/**
 * @file
 * The "faulty" decorator MemoryBackend: wraps any inner timing backend
 * ("ddr4" and "fixed-latency" alike) and overlays deterministic, timed
 * rank/channel outage windows on top of it. An outage behaves like an
 * extended refresh: canIssue() goes false for the affected scope and
 * refreshBusy() reports busy for channel-scope outages, so every
 * controller path that already defers to refresh defers to outages too
 * — no controller changes needed. Window edges are reported through
 * nextEventCycle(), which keeps fast-forward spans outage-constant and
 * bit-identical.
 */

#ifndef DSTRANGE_FAULT_FAULTY_BACKEND_H
#define DSTRANGE_FAULT_FAULTY_BACKEND_H

#include <memory>

#include "fault/fault_config.h"
#include "mem/memory_backend.h"

namespace dstrange::fault {

class FaultyBackend final : public mem::MemoryBackend
{
  public:
    /**
     * Wrap @p inner with the outage schedule of @p cfg for channel
     * @p channel_index. Each channel's window phase (and, for "rank"
     * scope, the affected rank) is a seeded hash, so outages stagger
     * across channels instead of hitting all of them at once.
     */
    FaultyBackend(std::unique_ptr<mem::MemoryBackend> inner,
                  const FaultConfig &cfg, unsigned channel_index);

    /** An outage window covers @p now (for the configured scope). */
    bool outageActive(Cycle now) const;

    /** Next cycle >= @p now at which outageActive() changes value. */
    Cycle nextOutageEdge(Cycle now) const;

    // MemoryBackend — timing queries overlaid with the outage windows.
    bool canIssue(dram::DramCmd cmd, unsigned bankIdx,
                  Cycle now) const override;
    bool refreshBusy(Cycle now) const override;
    Cycle nextEventCycle(Cycle now, bool engine_active) const override;

    // MemoryBackend — pure forwarding.
    unsigned numBanks() const override { return inner->numBanks(); }
    unsigned numRanks() const override { return inner->numRanks(); }
    unsigned
    rankOf(unsigned bankIdx) const override
    {
        return inner->rankOf(bankIdx);
    }
    std::int64_t
    openRow(unsigned bankIdx) const override
    {
        return inner->openRow(bankIdx);
    }
    Cycle
    earliestIssueCycle(dram::DramCmd cmd, unsigned bankIdx) const override
    {
        // The contract already excludes refresh/RNG/power-down state;
        // outages ride the same exclusion, so the inner fence stands.
        return inner->earliestIssueCycle(cmd, bankIdx);
    }
    std::uint64_t
    timingVersion() const override
    {
        // Outage edges never move the issue fences (see
        // earliestIssueCycle above), so the inner version is exact.
        return inner->timingVersion();
    }
    Cycle
    issue(dram::DramCmd cmd, unsigned bankIdx, Cycle now,
          std::int64_t row = dram::kNoOpenRow) override
    {
        return inner->issue(cmd, bankIdx, now, row);
    }
    void tickRefresh(Cycle now) override { inner->tickRefresh(now); }
    void occupyForRng(Cycle until) override { inner->occupyForRng(until); }
    bool rngBusy(Cycle now) const override { return inner->rngBusy(now); }
    void noteRngRound() override { inner->noteRngRound(); }
    void sampleState(Cycle now) override { inner->sampleState(now); }
    void
    fastForwardState(Cycle from, Cycle to) override
    {
        inner->fastForwardState(from, to);
    }
    const dram::ChannelEnergyCounters &
    energyCounters() const override
    {
        return inner->energyCounters();
    }
    unsigned
    openBankCount() const override
    {
        return inner->openBankCount();
    }
    void
    setPowerDownPolicy(Cycle idle_threshold) override
    {
        inner->setPowerDownPolicy(idle_threshold);
    }
    bool poweredDown() const override { return inner->poweredDown(); }
    bool
    anyRankPoweredDown() const override
    {
        return inner->anyRankPoweredDown();
    }
    void requestWake(Cycle now) override { inner->requestWake(now); }
    void
    setCommandObserver(CommandObserver observer) override
    {
        inner->setCommandObserver(std::move(observer));
    }

  private:
    std::unique_ptr<mem::MemoryBackend> inner;
    Cycle period;
    Cycle duration;
    bool rankScope;
    Cycle phase = 0;        ///< First window start (seeded stagger).
    unsigned affectedRank = 0;
};

} // namespace dstrange::fault

#endif // DSTRANGE_FAULT_FAULTY_BACKEND_H
