/**
 * @file
 * Per-channel fault-injection plane + TRNG-side health monitor. The
 * memory controller consults the plane once per completed TRNG round:
 * the round's 256-bit raw audit block is synthesized from the active
 * cell's (seed, channel, cell, use) tuple, corrupted by the configured
 * fault models, and audited with trng/bit_quality statistical tests. A
 * failing audit discards the round's bits; the health monitor then
 * counts failures per cell and blacklists/remaps persistent offenders
 * onto screened spares, with a bounded retry-then-refill escalation
 * when demand is waiting.
 *
 * Fast-forward contract: whether a round passes is a pure function of
 * the cell rotation state, so the plane exposes a side-effect-free peek
 * protocol (beginPeek/peekRound) for horizon queries — a *failing*
 * round is a span-ending event, which keeps every skipped span
 * discard-free and lets commitRound() replay skipped passing rounds
 * with mutations bit-identical to the tick path.
 */

#ifndef DSTRANGE_FAULT_FAULT_PLANE_H
#define DSTRANGE_FAULT_FAULT_PLANE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "fault/fault_config.h"
#include "fault/fault_registry.h"

namespace dstrange::fault {

/** End-of-run fault/mitigation counters (rides in WorkloadResult). */
struct FaultReport
{
    std::string models;    ///< Active model CSV of the run.
    bool monitor = false;  ///< Health monitor was enabled.

    std::uint64_t roundsAudited = 0;   ///< Rounds whose audit passed.
    std::uint64_t roundsDiscarded = 0; ///< Rounds failing the audit.
    std::uint64_t discardsStuck = 0;   ///< ... attributed to stuck cells.
    std::uint64_t discardsWeak = 0;    ///< ... attributed to weak cells.
    std::uint64_t discardsOther = 0;   ///< ... healthy-cell false alarms.
    /** Bits flipped inside the audit blocks of *passing* rounds:
     *  transient corruption delivered silently downstream. */
    std::uint64_t corruptedBits = 0;
    std::uint64_t blacklisted = 0;  ///< Cells retired by the monitor.
    std::uint64_t remapped = 0;     ///< Blacklists absorbed by a spare.
    std::uint64_t forcedBlacklists = 0; ///< Retry-limit escalations.
    std::uint64_t blacklistExhausted = 0; ///< Blacklists with no spare.

    /** Emit as a JSON object (caller owns surrounding structure). */
    void writeJson(JsonWriter &w) const;

    /** Parse a writeJson() document back, bit-exactly. */
    static FaultReport fromJson(const JsonValue &v);
};

/** Any model listed that corrupts audit blocks (i.e. not "outage")? */
bool hasCellModels(const FaultConfig &cfg);

/** Outage windows configured ("outage" listed with a nonzero window)? */
bool hasOutageModel(const FaultConfig &cfg);

/**
 * The fault plane: per-channel cell pools with deterministic fault
 * classification, round auditing, and blacklist/remap mitigation.
 * Constructed by the memory controller when hasCellModels(cfg).
 */
class FaultPlane
{
  public:
    FaultPlane(const FaultConfig &cfg, unsigned channels);
    ~FaultPlane();

    /**
     * Account one completed TRNG round on @p channel during a normal
     * tick. Selects the channel's next cell, audits its block, rotates
     * the pool, and applies mitigation on failure. @p demand_waiting
     * marks that RNG requests are queued (arms the retry-then-refill
     * escalation).
     * @return true when the round's bits may be delivered.
     */
    bool onRound(unsigned channel, bool demand_waiting);

    /**
     * Replay one *passing* round skipped by fast-forward: identical
     * mutations to the onRound() pass path. The caller guarantees the
     * round passes (horizon queries end spans before failing rounds).
     */
    void commitRound(unsigned channel);

    /** Reset peek scratch on every channel before a horizon probe. */
    void beginPeek();

    /**
     * Probe whether @p channel's next unpeeked round passes, without
     * mutating plane state. Successive calls walk successive rounds.
     */
    bool peekRound(unsigned channel);

    const FaultReport &stats() const { return counters; }

    /** Snapshot of the counters for WorkloadResult. */
    FaultReport report() const { return counters; }

    /** Non-blacklisted faulty (weak/stuck) cells still in @p channel's
     *  active pool — the health monitor's convergence target is 0. */
    unsigned faultyActive(unsigned channel) const;

    /** Spare cells @p channel has left. */
    unsigned sparesLeft(unsigned channel) const;

    /** Deterministic "key=value " state tokens for lockstep
     *  fingerprinting (counters + per-channel rotation state). */
    std::string fingerprint() const;

  private:
    struct Cell
    {
        std::uint32_t id = 0;
        CellClass cls = CellClass::Healthy;
        std::uint64_t useCount = 0;
        unsigned failCount = 0;
    };

    struct ChannelState
    {
        std::vector<Cell> pool;           ///< Active rotation.
        std::vector<std::uint32_t> spares; ///< Healthy remap targets.
        std::size_t pointer = 0;          ///< Next cell to use.
        unsigned consecDiscards = 0;      ///< Fails while demand waits.
        // Peek scratch (side-effect-free horizon walk).
        std::size_t peekPointer = 0;
        std::vector<std::uint32_t> peekExtraUses;
    };

    struct Audit
    {
        bool pass = false;
        std::uint64_t flips = 0;
    };

    /** Pure round evaluation for @p cell at use count @p use. */
    Audit evalRound(unsigned channel, const Cell &cell,
                    std::uint64_t use) const;

    /** Retire pool slot @p index: swap in a spare or shrink the pool. */
    void blacklistCell(ChannelState &st, std::size_t index);

    FaultConfig cfg;
    std::vector<std::unique_ptr<FaultModel>> models;
    std::vector<ChannelState> channels;
    FaultReport counters;
};

} // namespace dstrange::fault

#endif // DSTRANGE_FAULT_FAULT_PLANE_H
