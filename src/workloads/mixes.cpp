#include "workloads/mixes.h"

#include <cassert>

#include "common/rng.h"
#include "workloads/app_profile.h"

namespace dstrange::workloads {

namespace {

std::string
mixName(const std::string &app, double mbps)
{
    return app + "+rng" + std::to_string(static_cast<int>(mbps));
}

/** Draw one random app name from a category. */
const std::string &
draw(Xoshiro256ss &gen, const std::vector<const AppProfile *> &pool)
{
    assert(!pool.empty());
    return pool[gen.nextBelow(pool.size())]->name;
}

} // namespace

std::vector<WorkloadSpec>
dualCoreMixes(double rng_mbps)
{
    std::vector<WorkloadSpec> out;
    for (const AppProfile &p : appTable()) {
        WorkloadSpec spec;
        spec.name = mixName(p.name, rng_mbps);
        spec.apps = {p.name};
        spec.rngThroughputMbps = rng_mbps;
        out.push_back(std::move(spec));
    }
    return out;
}

std::vector<WorkloadSpec>
dualCorePlottedMixes(double rng_mbps)
{
    std::vector<WorkloadSpec> out;
    for (const std::string &name : paperPlottedApps()) {
        WorkloadSpec spec;
        spec.name = mixName(name, rng_mbps);
        spec.apps = {name};
        spec.rngThroughputMbps = rng_mbps;
        out.push_back(std::move(spec));
    }
    return out;
}

std::vector<WorkloadSpec>
fourCoreGroups(std::uint64_t seed)
{
    const auto low = appsByCategory('L');
    const auto high = appsByCategory('H');

    struct GroupDef
    {
        const char *label;
        char cats[3];
    };
    // S denotes the synthetic RNG benchmark occupying the fourth core.
    const GroupDef defs[] = {
        {"LLLS", {'L', 'L', 'L'}},
        {"LLHS", {'L', 'L', 'H'}},
        {"LHHS", {'L', 'H', 'H'}},
        {"HHHS", {'H', 'H', 'H'}},
    };

    std::vector<WorkloadSpec> out;
    for (const GroupDef &def : defs) {
        Xoshiro256ss gen(mix64(seed) ^
                         mix64(std::hash<std::string>{}(def.label)));
        for (unsigned i = 0; i < 10; ++i) {
            WorkloadSpec spec;
            spec.group = def.label;
            spec.name = std::string(def.label) + "-" +
                        (i < 10 ? "0" : "") + std::to_string(i);
            for (char c : def.cats)
                spec.apps.push_back(draw(gen, c == 'L' ? low : high));
            spec.rngThroughputMbps = 5120.0;
            out.push_back(std::move(spec));
        }
    }
    return out;
}

std::vector<WorkloadSpec>
multiCoreCategoryGroup(unsigned n_cores, char category, std::uint64_t seed)
{
    assert(n_cores >= 2);
    const auto pool = appsByCategory(category);
    Xoshiro256ss gen(mix64(seed) ^ mix64(category) ^ mix64(n_cores));

    std::vector<WorkloadSpec> out;
    for (unsigned i = 0; i < 10; ++i) {
        WorkloadSpec spec;
        spec.group = std::string(1, category) + "(" +
                     std::to_string(n_cores) + ")";
        spec.name = spec.group + "-" + std::to_string(i);
        for (unsigned a = 0; a + 1 < n_cores; ++a)
            spec.apps.push_back(draw(gen, pool));
        spec.rngThroughputMbps = 5120.0;
        out.push_back(std::move(spec));
    }
    return out;
}

} // namespace dstrange::workloads
