#include "workloads/rng_benchmark.h"

#include <algorithm>
#include <cmath>

namespace dstrange::workloads {

std::uint64_t
RngBenchmark::gapForThroughput(double mbps)
{
    // requests/s at the target throughput, 64 bits per request.
    const double req_per_sec = mbps * 1e6 / 64.0;
    // Ideal instruction rate: issue width x core frequency.
    const double instr_per_sec = 3.0 * kCpuFreqHz;
    return static_cast<std::uint64_t>(
        std::max(1.0, std::round(instr_per_sec / req_per_sec)));
}

RngBenchmark::RngBenchmark(double throughput_mbps,
                           const dram::DramGeometry &geometry,
                           std::uint64_t seed, double regular_read_mpki)
    : benchName("rng" + std::to_string(static_cast<int>(throughput_mbps))),
      mbps(throughput_mbps), gap(gapForThroughput(throughput_mbps)),
      mapper(geometry), gen(mix64(seed) ^ 0xc0ffee)
{
    // Convert the light regular-read MPKI into a per-op probability:
    // ops arrive every `gap` instructions, so reads/op = mpki*gap/1000.
    readProbability =
        std::min(0.5, regular_read_mpki * static_cast<double>(gap) / 1000.0);
}

cpu::TraceOp
RngBenchmark::next()
{
    cpu::TraceOp op;
    op.computeInstrs = gap;
    if (gen.nextBool(readProbability)) {
        // Occasional regular read. The stride covers all banks and
        // channels but stays within a small working set — RNG
        // applications are not memory-intensive (Section 7), and their
        // compact footprint is what lets the idleness predictor learn
        // their arrival behaviour.
        constexpr std::uint64_t kFootprintLines = 1u << 16; // 4 MB
        lineCursor = (lineCursor + 97) % kFootprintLines;
        op.type = mem::ReqType::Read;
        op.addr = lineCursor * kLineBytes;
    } else {
        op.type = mem::ReqType::Rng;
        op.addr = 0;
    }
    return op;
}

} // namespace dstrange::workloads
