#include "workloads/app_profile.h"

#include <stdexcept>

namespace dstrange::workloads {

namespace {

// name, mpki, readFrac, rowLocality, hotBanks, burstStay, burstIntensity,
// footprint (lines).
//
// The 23 plotted apps carry the paper's names; MPKI rises along the
// paper's x-axis order. Low-intensity fillers complete the 43-app pool
// used for workload-mix construction.
std::vector<AppProfile>
buildTable()
{
    auto app = [](std::string name, double mpki, double rf, double rl,
                  unsigned hb, double bs, double bi,
                  std::uint64_t fp) -> AppProfile {
        AppProfile p;
        p.name = std::move(name);
        p.mpki = mpki;
        p.readFraction = rf;
        p.rowLocality = rl;
        p.hotBanks = hb;
        p.burstStay = bs;
        p.burstIntensity = bi;
        p.footprintLines = fp;
        return p;
    };

    std::vector<AppProfile> t;
    // --- Medium intensity (plotted, YCSB/TPC/media/SPEC) --------------
    t.push_back(app("ycsb3", 1.2, 0.80, 0.35, 4, 0.97, 8.0, 1u << 21));
    t.push_back(app("ycsb4", 1.6, 0.78, 0.35, 4, 0.97, 8.0, 1u << 21));
    t.push_back(app("ycsb2", 2.0, 0.80, 0.40, 4, 0.97, 7.0, 1u << 21));
    t.push_back(app("ycsb1", 2.5, 0.75, 0.40, 4, 0.96, 7.0, 1u << 21));
    t.push_back(app("sphinx3", 3.0, 0.85, 0.65, 6, 0.96, 6.0, 1u << 19));
    t.push_back(app("ycsb0", 3.6, 0.78, 0.40, 4, 0.97, 7.0, 1u << 21));
    t.push_back(app("jp2d", 4.2, 0.70, 0.80, 8, 0.96, 6.0, 1u << 18));
    t.push_back(app("tpcc64", 5.0, 0.65, 0.30, 4, 0.97, 8.0, 1u << 22));
    t.push_back(app("jp2e", 6.0, 0.60, 0.80, 8, 0.96, 6.0, 1u << 18));
    t.push_back(app("wcount0", 7.0, 0.72, 0.55, 6, 0.96, 7.0, 1u << 20));
    t.push_back(app("cactus", 8.2, 0.75, 0.70, 8, 0.95, 5.0, 1u << 20));
    t.push_back(app("astar", 9.2, 0.82, 0.30, 3, 0.95, 5.0, 1u << 20));
    // --- High intensity (plotted) --------------------------------------
    t.push_back(app("tpch17", 11.0, 0.85, 0.60, 6, 0.90, 3.0, 1u << 22));
    t.push_back(app("soplex", 13.0, 0.80, 0.55, 6, 0.70, 2.0, 1u << 21));
    t.push_back(app("milc", 15.0, 0.75, 0.70, 8, 0.60, 1.8, 1u << 21));
    t.push_back(app("gems", 17.0, 0.78, 0.75, 8, 0.60, 1.8, 1u << 21));
    t.push_back(app("leslie3d", 19.0, 0.76, 0.85, 8, 0.55, 1.5, 1u << 21));
    t.push_back(app("tpch2", 22.0, 0.85, 0.60, 6, 0.88, 2.5, 1u << 22));
    t.push_back(app("zeusmp", 25.0, 0.72, 0.80, 8, 0.50, 1.5, 1u << 21));
    t.push_back(app("lbm", 29.0, 0.55, 0.90, 8, 0.40, 1.2, 1u << 21));
    t.push_back(app("mcf", 33.0, 0.85, 0.20, 3, 0.55, 1.5, 1u << 22));
    t.push_back(app("libq", 38.0, 0.95, 0.95, 8, 0.30, 1.1, 1u << 20));
    t.push_back(app("h264d", 44.0, 0.70, 0.75, 8, 0.60, 1.5, 1u << 19));
    // --- Low intensity (pool fillers for L-category mixes) -------------
    t.push_back(app("perlbench", 0.20, 0.80, 0.55, 4, 0.85, 4.0, 1u << 18));
    t.push_back(app("bzip2", 0.50, 0.70, 0.65, 6, 0.80, 3.0, 1u << 19));
    t.push_back(app("gcc", 0.70, 0.78, 0.50, 4, 0.85, 4.0, 1u << 19));
    t.push_back(app("gobmk", 0.30, 0.82, 0.45, 4, 0.80, 3.0, 1u << 18));
    t.push_back(app("hmmer", 0.15, 0.75, 0.70, 6, 0.70, 2.0, 1u << 17));
    t.push_back(app("sjeng", 0.40, 0.80, 0.40, 4, 0.80, 3.0, 1u << 18));
    t.push_back(app("namd", 0.10, 0.78, 0.75, 8, 0.60, 2.0, 1u << 17));
    t.push_back(app("dealII", 0.25, 0.80, 0.60, 6, 0.75, 2.5, 1u << 18));
    t.push_back(app("povray", 0.05, 0.85, 0.60, 4, 0.70, 2.0, 1u << 16));
    t.push_back(app("calculix", 0.12, 0.76, 0.70, 6, 0.70, 2.0, 1u << 17));
    t.push_back(app("tonto", 0.20, 0.78, 0.65, 6, 0.75, 2.5, 1u << 17));
    t.push_back(app("gamess", 0.08, 0.80, 0.65, 4, 0.70, 2.0, 1u << 16));
    t.push_back(app("gromacs", 0.30, 0.75, 0.70, 6, 0.70, 2.0, 1u << 18));
    t.push_back(app("h264ref", 0.50, 0.70, 0.75, 8, 0.75, 2.5, 1u << 18));
    t.push_back(app("epic", 0.35, 0.68, 0.80, 8, 0.80, 3.0, 1u << 17));
    t.push_back(app("mpeg2d", 0.45, 0.70, 0.80, 8, 0.80, 3.0, 1u << 18));
    t.push_back(app("adpcmd", 0.10, 0.72, 0.85, 8, 0.70, 2.0, 1u << 16));
    t.push_back(app("tpch6", 0.80, 0.85, 0.60, 6, 0.90, 4.0, 1u << 21));
    t.push_back(app("tpcc16", 0.60, 0.65, 0.30, 4, 0.92, 5.0, 1u << 21));
    t.push_back(app("ycsb5", 0.90, 0.78, 0.40, 4, 0.92, 5.0, 1u << 21));
    return t;
}

} // namespace

const std::vector<AppProfile> &
appTable()
{
    static const std::vector<AppProfile> table = buildTable();
    return table;
}

const AppProfile &
appByName(const std::string &name)
{
    for (const AppProfile &p : appTable())
        if (p.name == name)
            return p;
    throw std::out_of_range("unknown application profile: " + name);
}

std::vector<const AppProfile *>
appsByCategory(char category)
{
    std::vector<const AppProfile *> out;
    for (const AppProfile &p : appTable())
        if (p.category() == category)
            out.push_back(&p);
    return out;
}

const std::vector<std::string> &
paperPlottedApps()
{
    static const std::vector<std::string> names = {
        "ycsb3",   "ycsb4",  "ycsb2", "ycsb1",    "sphinx3", "ycsb0",
        "jp2d",    "tpcc64", "jp2e",  "wcount0",  "cactus",  "astar",
        "tpch17",  "soplex", "milc",  "gems",     "leslie3d", "tpch2",
        "zeusmp",  "lbm",    "mcf",   "libq",     "h264d",
    };
    return names;
}

} // namespace dstrange::workloads
