/**
 * @file
 * Multi-programmed workload mix construction (Section 7 / Appendix A.2):
 * 43 two-core mixes per RNG intensity, the four 4-core groups
 * (LLLS/LLHS/LHHS/HHHS), and the L/M/H groups for 8- and 16-core
 * configurations.
 */

#ifndef DSTRANGE_WORKLOADS_MIXES_H
#define DSTRANGE_WORKLOADS_MIXES_H

#include <string>
#include <vector>

namespace dstrange::workloads {

/** One multi-programmed workload: non-RNG apps + one RNG benchmark. */
struct WorkloadSpec
{
    std::string name;              ///< e.g. "mcf+rng5120" or "LLHS-03".
    std::string group;             ///< e.g. "LLHS" or "H(8)"; may be empty.
    std::vector<std::string> apps; ///< Non-RNG application names.
    /** Required RNG throughput of the synthetic RNG app (0 = none). */
    double rngThroughputMbps = 5120.0;
};

/** All 43 two-core mixes (one app + one RNG benchmark). */
std::vector<WorkloadSpec> dualCoreMixes(double rng_mbps);

/** The 23 plotted two-core mixes in the paper's x-axis order. */
std::vector<WorkloadSpec> dualCorePlottedMixes(double rng_mbps);

/**
 * The four 4-core groups, 10 mixes each: three apps drawn from the
 * group's memory-intensity categories plus the 5 Gb/s RNG benchmark.
 */
std::vector<WorkloadSpec> fourCoreGroups(std::uint64_t seed);

/**
 * One L/M/H group of @p n_cores-core workloads (10 mixes): n_cores-1
 * applications from the category plus the RNG benchmark.
 */
std::vector<WorkloadSpec> multiCoreCategoryGroup(unsigned n_cores,
                                                 char category,
                                                 std::uint64_t seed);

} // namespace dstrange::workloads

#endif // DSTRANGE_WORKLOADS_MIXES_H
