/**
 * @file
 * Synthetic RNG application benchmarks (Section 7): request 64-bit
 * random numbers at a target throughput, controlled by the number of
 * compute instructions between consecutive requests, plus a light
 * sprinkle of regular reads across all banks and channels.
 */

#ifndef DSTRANGE_WORKLOADS_RNG_BENCHMARK_H
#define DSTRANGE_WORKLOADS_RNG_BENCHMARK_H

#include <string>

#include "common/rng.h"
#include "cpu/trace_source.h"
#include "dram/address_mapper.h"

namespace dstrange::workloads {

/** RNG micro-benchmark trace generator. */
class RngBenchmark : public cpu::TraceSource
{
  public:
    /**
     * @param throughput_mbps required RNG throughput (e.g. 640..10240)
     * @param geometry memory geometry for the regular-read addresses
     * @param seed deterministic stream seed
     * @param regular_read_mpki light non-RNG intensity (paper: the RNG
     *        benchmarks are not memory intensive in terms of non-RNG
     *        requests)
     */
    RngBenchmark(double throughput_mbps,
                 const dram::DramGeometry &geometry, std::uint64_t seed,
                 double regular_read_mpki = 0.5);

    cpu::TraceOp next() override;
    const std::string &name() const override { return benchName; }

    /** Compute instructions between two RNG requests. */
    std::uint64_t instrGap() const { return gap; }

    double throughputMbps() const { return mbps; }

    /**
     * Derive the instruction gap for a target throughput assuming the
     * core's ideal issue rate (3-wide at 4 GHz).
     */
    static std::uint64_t gapForThroughput(double mbps);

  private:
    std::string benchName;
    double mbps;
    std::uint64_t gap;
    dram::AddressMapper mapper;
    Xoshiro256ss gen;
    double readProbability; ///< P(regular read instead of RNG request).
    std::uint64_t lineCursor = 0;
};

} // namespace dstrange::workloads

#endif // DSTRANGE_WORKLOADS_RNG_BENCHMARK_H
