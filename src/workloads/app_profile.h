/**
 * @file
 * Statistical profiles of the paper's 43 single-core applications
 * (SPEC CPU2006, TPC, STREAM, MediaBench, YCSB). We do not have the
 * original SimPoint traces, so each application is modelled by the
 * memory-stream statistics that drive the mechanisms under study:
 * memory intensity (MPKI), read fraction, row-buffer locality, bank
 * parallelism and burstiness. Profile values are chosen so the paper's
 * L/M/H categories and the plotted per-application ordering hold
 * (see DESIGN.md, substitution table).
 */

#ifndef DSTRANGE_WORKLOADS_APP_PROFILE_H
#define DSTRANGE_WORKLOADS_APP_PROFILE_H

#include <string>
#include <vector>

namespace dstrange::workloads {

/** Memory-behaviour profile of one application. */
struct AppProfile
{
    std::string name;
    double mpki = 1.0;         ///< LLC misses per kilo-instruction.
    double readFraction = 0.7; ///< Fraction of misses that are reads.
    double rowLocality = 0.6;  ///< P(sequential next line).
    unsigned hotBanks = 8;     ///< Bank-level parallelism (1..8).
    /** P(stay) of the bursty state in the two-state arrival modulator. */
    double burstStay = 0.9;
    /** Request-rate multiplier while bursting (1 = not bursty). */
    double burstIntensity = 4.0;
    /** Working-set size in cache lines. */
    std::uint64_t footprintLines = 1u << 20;

    /** Paper category: L (<1), M (1..10), H (>=10) by MPKI. */
    char
    category() const
    {
        if (mpki < 1.0)
            return 'L';
        if (mpki < 10.0)
            return 'M';
        return 'H';
    }
};

/** The full 43-application table. */
const std::vector<AppProfile> &appTable();

/** Look up a profile by name; throws std::out_of_range if unknown. */
const AppProfile &appByName(const std::string &name);

/** All applications in the given category ('L', 'M' or 'H'). */
std::vector<const AppProfile *> appsByCategory(char category);

/**
 * The 23 medium/high-intensity applications the paper plots, in the
 * paper's x-axis order (Fig. 1/5/6/9/10/11/13/14/15/16/17).
 */
const std::vector<std::string> &paperPlottedApps();

} // namespace dstrange::workloads

#endif // DSTRANGE_WORKLOADS_APP_PROFILE_H
