#include "workloads/synthetic_trace.h"

#include <algorithm>

namespace dstrange::workloads {

SyntheticTrace::SyntheticTrace(const AppProfile &profile,
                               const dram::DramGeometry &geometry,
                               CoreId core, std::uint64_t seed)
    : prof(profile), mapper(geometry),
      gen(mix64(seed) ^ mix64(core * 0x9e37u + 1) ^
          mix64(std::hash<std::string>{}(profile.name)))
{
    // The burst modulator spends a stationary 1/3 of accesses in the
    // bursty state (enter probability is half the exit probability), so
    // normalize the calm-state gap to keep the long-run MPKI on target:
    // E[gap] = f*g/m + (1-f)*g with f = 1/3 and m = burstIntensity.
    const double target_gap = std::max(1.0, 1000.0 / prof.mpki - 1.0);
    const double f = 1.0 / 3.0;
    meanGap = target_gap / (1.0 - f + f / prof.burstIntensity);
    // Give each core a disjoint region so co-running applications contend
    // for banks/rows, not for data.
    const std::uint64_t total_lines =
        geometry.capacityBytes() / kLineBytes;
    baseLine = (static_cast<std::uint64_t>(core) * (total_lines / 16)) %
               total_lines;
    currentLine = baseLine;
}

Addr
SyntheticTrace::randomJump()
{
    // Random line in the working set, restricted to hot banks. The
    // calm and bursty phases touch disjoint halves of the working set,
    // modelling program-phase behaviour: the address stream carries
    // information about the arrival process, which is exactly the
    // correlation DR-STRaNGe's last-address-indexed idleness predictor
    // exploits (Section 5.1.2).
    const dram::DramGeometry &g = mapper.geometry();
    dram::DramCoord coord;
    coord.channel = static_cast<unsigned>(gen.nextBelow(g.channels));
    coord.bank = static_cast<unsigned>(gen.nextBelow(prof.hotBanks)) %
                 g.banksPerRank;
    const std::uint64_t rows_in_footprint = std::max<std::uint64_t>(
        2, prof.footprintLines /
               (static_cast<std::uint64_t>(g.colsPerRow()) * g.channels *
                prof.hotBanks));
    const std::uint64_t half = rows_in_footprint / 2;
    const std::uint64_t row_offset =
        bursting ? gen.nextBelow(half) : half + gen.nextBelow(half);
    coord.row = static_cast<unsigned>(
        (baseLine / (g.colsPerRow() * g.banksPerRank) + row_offset) %
        g.rowsPerBank);
    coord.col = static_cast<unsigned>(gen.nextBelow(g.colsPerRow()));
    return mapper.encode(coord);
}

cpu::TraceOp
SyntheticTrace::next()
{
    // Burst-state transition (evaluated per access).
    if (bursting) {
        if (!gen.nextBool(prof.burstStay))
            bursting = false;
    } else {
        // Calm->burst so that the chain spends ~35% of accesses bursting.
        const double enter = (1.0 - prof.burstStay) * 0.5;
        if (gen.nextBool(enter))
            bursting = true;
    }

    const double gap_mean =
        bursting ? meanGap / prof.burstIntensity : meanGap;

    cpu::TraceOp op;
    op.computeInstrs = gen.nextGeometric(gap_mean);
    op.type = gen.nextBool(prof.readFraction) ? mem::ReqType::Read
                                              : mem::ReqType::Write;

    if (gen.nextBool(prof.rowLocality)) {
        currentLine++;
    } else {
        currentLine = randomJump() / kLineBytes;
    }
    op.addr = currentLine * kLineBytes;
    return op;
}

} // namespace dstrange::workloads
