/**
 * @file
 * Synthetic memory-trace generator: turns an AppProfile into an infinite
 * operation stream with the profile's MPKI, read/write mix, row-buffer
 * locality, bank-level parallelism and bursty arrivals.
 */

#ifndef DSTRANGE_WORKLOADS_SYNTHETIC_TRACE_H
#define DSTRANGE_WORKLOADS_SYNTHETIC_TRACE_H

#include <string>

#include "common/rng.h"
#include "cpu/trace_source.h"
#include "dram/address_mapper.h"
#include "workloads/app_profile.h"

namespace dstrange::workloads {

/**
 * Deterministic per-(application, core, seed) stream generator.
 *
 * Arrival process: the gap (compute instructions) before each access is
 * geometric with mean 1000/MPKI, modulated by a two-state (calm/bursty)
 * Markov chain — bursty phases compress gaps by the profile's intensity
 * factor, producing the short-idle-period-dominated distributions of the
 * paper's Figure 5.
 *
 * Address process: with probability rowLocality the stream continues
 * sequentially (which preserves row hits under the line-interleaved
 * channel mapping); otherwise it jumps to a random line in the working
 * set, restricted to the profile's hot banks.
 */
class SyntheticTrace : public cpu::TraceSource
{
  public:
    SyntheticTrace(const AppProfile &profile,
                   const dram::DramGeometry &geometry, CoreId core,
                   std::uint64_t seed);

    cpu::TraceOp next() override;
    const std::string &name() const override { return prof.name; }

    const AppProfile &profile() const { return prof; }

  private:
    Addr randomJump();

    AppProfile prof;
    dram::AddressMapper mapper;
    Xoshiro256ss gen;

    std::uint64_t currentLine; ///< Line address of the last access.
    std::uint64_t baseLine;    ///< Start of this core's working set.
    bool bursting = false;
    double meanGap = 1.0;      ///< Calm-state mean compute gap.
};

} // namespace dstrange::workloads

#endif // DSTRANGE_WORKLOADS_SYNTHETIC_TRACE_H
