/**
 * @file
 * Trace file import/export: a plain-text format compatible in spirit
 * with Ramulator CPU traces, so users can drive the simulator with
 * their own captured traces instead of the synthetic generators.
 *
 * Format: one operation per line,
 *     <compute-instrs> R|W|G [hex-address]
 * where G is a 64-bit random number request (no address). Lines
 * starting with '#' are comments.
 */

#ifndef DSTRANGE_WORKLOADS_TRACE_FILE_H
#define DSTRANGE_WORKLOADS_TRACE_FILE_H

#include <string>
#include <vector>

#include "cpu/trace_source.h"

namespace dstrange::workloads {

/**
 * Replays a trace file. The trace loops when exhausted (multi-programmed
 * runs need an infinite stream), matching standard methodology.
 */
class TraceFileSource : public cpu::TraceSource
{
  public:
    /** @throws std::runtime_error on missing/empty/malformed files. */
    explicit TraceFileSource(const std::string &path);

    cpu::TraceOp next() override;
    const std::string &name() const override { return traceName; }

    std::size_t size() const { return ops.size(); }

    /** How many times the trace wrapped around. */
    std::uint64_t loops() const { return loopCount; }

  private:
    std::string traceName;
    std::vector<cpu::TraceOp> ops;
    std::size_t pos = 0;
    std::uint64_t loopCount = 0;
};

/** Record @p count operations of @p source into @p path. */
void writeTraceFile(const std::string &path, cpu::TraceSource &source,
                    std::size_t count);

} // namespace dstrange::workloads

#endif // DSTRANGE_WORKLOADS_TRACE_FILE_H
