#include "workloads/trace_file.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dstrange::workloads {

TraceFileSource::TraceFileSource(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open trace file: " + path);

    // Trace name = file name without directories.
    const std::size_t slash = path.find_last_of('/');
    traceName = slash == std::string::npos ? path : path.substr(slash + 1);

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream iss(line);
        cpu::TraceOp op;
        std::string kind;
        if (!(iss >> op.computeInstrs >> kind)) {
            throw std::runtime_error("malformed trace line " +
                                     std::to_string(line_no) + " in " +
                                     path);
        }
        if (kind == "R" || kind == "W") {
            std::string addr_hex;
            if (!(iss >> addr_hex)) {
                throw std::runtime_error("missing address on line " +
                                         std::to_string(line_no) + " in " +
                                         path);
            }
            op.addr = std::stoull(addr_hex, nullptr, 16);
            op.type = kind == "R" ? mem::ReqType::Read
                                  : mem::ReqType::Write;
        } else if (kind == "G") {
            op.type = mem::ReqType::Rng;
            op.addr = 0;
        } else {
            throw std::runtime_error("unknown op kind '" + kind +
                                     "' on line " +
                                     std::to_string(line_no) + " in " +
                                     path);
        }
        ops.push_back(op);
    }
    if (ops.empty())
        throw std::runtime_error("empty trace file: " + path);
}

cpu::TraceOp
TraceFileSource::next()
{
    const cpu::TraceOp op = ops[pos];
    if (++pos == ops.size()) {
        pos = 0;
        loopCount++;
    }
    return op;
}

void
writeTraceFile(const std::string &path, cpu::TraceSource &source,
               std::size_t count)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write trace file: " + path);
    out << "# dr-strange trace: " << source.name() << "\n";
    for (std::size_t i = 0; i < count; ++i) {
        const cpu::TraceOp op = source.next();
        out << op.computeInstrs << ' ';
        switch (op.type) {
          case mem::ReqType::Read:
            out << "R " << std::hex << op.addr << std::dec;
            break;
          case mem::ReqType::Write:
            out << "W " << std::hex << op.addr << std::dec;
            break;
          case mem::ReqType::Rng:
            out << "G";
            break;
        }
        out << '\n';
    }
}

} // namespace dstrange::workloads
