#include "strange/random_buffer.h"

#include <algorithm>
#include <cassert>

namespace dstrange::strange {

RandomNumberBuffer::RandomNumberBuffer(unsigned entries64)
    : capacity(static_cast<double>(entries64) * 64.0)
{
}

double
RandomNumberBuffer::deposit(double bits)
{
    assert(bits >= 0.0);
    const double accepted = std::min(bits, capacity - level);
    if (accepted <= 0.0) {
        overflowed += bits;
        return 0.0;
    }
    level += accepted;
    deposited += accepted;
    overflowed += bits - accepted;
    return accepted;
}

void
RandomNumberBuffer::serve64()
{
    assert(canServe64());
    level -= 64.0;
    served++;
}

} // namespace dstrange::strange
