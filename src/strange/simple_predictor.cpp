#include "strange/simple_predictor.h"

#include <cassert>

#include "common/rng.h"

namespace dstrange::strange {

SimpleIdlenessPredictor::SimpleIdlenessPredictor(const Config &config)
    : cfg(config), counters(config.tableEntries, 2)
{
    assert(cfg.tableEntries > 0);
    // Counters start at 2 (weakly long): our simulations run orders of
    // magnitude fewer instructions than the paper's 200M-instruction
    // SimPoints, so a pessimistic initialization would leave most
    // entries cold at measurement time; regions with predominantly short
    // idle periods train down within two observations.
}

unsigned
SimpleIdlenessPredictor::indexOf(Addr addr) const
{
    // Index with the high-order address bits (4 MB regions): accesses to
    // one data structure/program region share an entry, which is what
    // lets a 256-entry table learn the address <-> idle-length
    // correlation of Section 5.1.2 instead of scattering its training
    // across the whole footprint.
    constexpr unsigned kRegionShift = 22;
    return static_cast<unsigned>(mix64(addr >> kRegionShift) %
                                 counters.size());
}

bool
SimpleIdlenessPredictor::predictLong(Addr last_addr)
{
    lastPrediction = peekLong(last_addr);
    predictionPending = true;
    return lastPrediction;
}

bool
SimpleIdlenessPredictor::peekLong(Addr last_addr) const
{
    return counters[indexOf(last_addr)] >= 2;
}

void
SimpleIdlenessPredictor::periodEnded(Addr last_addr, Cycle idle_length)
{
    const bool actually_long = idle_length >= cfg.periodThreshold;
    std::uint8_t &ctr = counters[indexOf(last_addr)];
    if (actually_long) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    if (predictionPending) {
        score(lastPrediction, actually_long);
        predictionPending = false;
    }
}

unsigned
SimpleIdlenessPredictor::counterValue(Addr last_addr) const
{
    return counters[indexOf(last_addr)];
}

} // namespace dstrange::strange
