/**
 * @file
 * The Q-learning-based DRAM idleness predictor of Section 5.1.2. State is
 * the last accessed address's 10 LSBs XOR'ed with a 10-bit history of the
 * last 10 idle periods (1 = long, 0 = short); actions are {generate,
 * wait}; Q(s,a) <- (1-alpha) Q(s,a) + alpha * r with no next-state term
 * because the next state depends on unknown future accesses.
 */

#ifndef DSTRANGE_STRANGE_RL_PREDICTOR_H
#define DSTRANGE_STRANGE_RL_PREDICTOR_H

#include <vector>

#include "common/rng.h"
#include "strange/idleness_predictor.h"

namespace dstrange::strange {

/** Q-learning idleness predictor (the DR-STRaNGe+RL design). */
class RlIdlenessPredictor : public IdlenessPredictor
{
  public:
    struct Config
    {
        unsigned stateBits = 10;
        Cycle periodThreshold = 40;
        double alpha = 0.05;        ///< Learning rate (paper: 0.05).
        double epsilon = 0.02;      ///< Exploration rate.
        double rewardCorrectGenerate = 1.0;
        double rewardCorrectWait = 1.0;
        double penaltyFalsePositive = -1.0;
        double penaltyFalseNegative = -0.5;
        std::uint64_t seed = 0x5eed;
    };

    explicit RlIdlenessPredictor(const Config &config);

    bool predictLong(Addr last_addr) override;
    bool peekLong(Addr last_addr) const override;
    void periodEnded(Addr last_addr, Cycle idle_length) override;

    /** Q-value inspection for tests. */
    double qValue(unsigned state, bool generate) const;

    /** Current 10-bit idle-period history (1 = long). */
    unsigned history() const { return idleHistory; }

    const Config &config() const { return cfg; }

  private:
    unsigned stateOf(Addr last_addr) const;

    Config cfg;
    unsigned stateMask;
    /** Q table: [state][action], action 0 = wait, 1 = generate. */
    std::vector<double> q;
    Xoshiro256ss explore;

    unsigned idleHistory = 0;
    unsigned pendingState = 0;
    bool pendingAction = false;
    bool predictionPending = false;
};

} // namespace dstrange::strange

#endif // DSTRANGE_STRANGE_RL_PREDICTOR_H
