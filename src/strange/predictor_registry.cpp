#include "strange/predictor_registry.h"

#include <mutex>
#include <stdexcept>

#include "common/registry_key.h"
#include "strange/simple_predictor.h"

namespace dstrange::strange {

PredictorRegistry::PredictorRegistry()
{
    add("none",
        [](const PredictorContext &) {
            return std::unique_ptr<IdlenessPredictor>();
        },
        [](const PredictorAreaContext &) { return 0.0; });

    add("simple",
        [](const PredictorContext &ctx)
            -> std::unique_ptr<IdlenessPredictor> {
            SimpleIdlenessPredictor::Config pc;
            pc.tableEntries = ctx.tableEntries;
            pc.periodThreshold = ctx.periodThreshold;
            return std::make_unique<SimpleIdlenessPredictor>(pc);
        },
        [](const PredictorAreaContext &ctx) {
            // 2-bit counters per entry, one table per channel, plus the
            // last-address register and idle-length counter per channel.
            return static_cast<double>(ctx.tableEntries) * 2.0 *
                       ctx.channels +
                   ctx.channels * (48.0 + 16.0);
        });

    add("rl",
        [](const PredictorContext &ctx)
            -> std::unique_ptr<IdlenessPredictor> {
            RlIdlenessPredictor::Config pc = ctx.rlConfig;
            pc.periodThreshold = ctx.periodThreshold;
            pc.seed += ctx.channel; // Independent exploration per channel.
            return std::make_unique<RlIdlenessPredictor>(pc);
        },
        [](const PredictorAreaContext &ctx) {
            // Q table: 2 actions x 2^stateBits states x 4-byte Q values,
            // plus the 10-bit history register per channel.
            return 2.0 *
                       static_cast<double>(1u << ctx.rlConfig.stateBits) *
                       32.0 +
                   ctx.channels * 10.0;
        });
}

PredictorRegistry &
PredictorRegistry::instance()
{
    static PredictorRegistry registry;
    return registry;
}

void
PredictorRegistry::add(const std::string &key, PredictorFactory factory,
                       PredictorAreaModel area)
{
    validateRegistryKey("predictor", key);
    if (!factory)
        throw std::invalid_argument("predictor factory for '" + key +
                                    "' must not be empty");
    std::unique_lock<std::shared_mutex> lock(mu);
    if (!entries.emplace(key, Entry{std::move(factory), std::move(area)})
             .second)
        throw std::invalid_argument("predictor '" + key +
                                    "' is already registered");
}

PredictorRegistry::Entry
PredictorRegistry::at(const std::string &key) const
{
    // Returns a copy so the factory/area functions run lock-free.
    std::shared_lock<std::shared_mutex> lock(mu);
    const auto it = entries.find(key);
    if (it == entries.end()) {
        std::string known;
        for (const auto &[k, e] : entries)
            known += (known.empty() ? "" : ", ") + k;
        throw std::out_of_range("unknown predictor '" + key +
                                "' (registered: " + known + ")");
    }
    return it->second;
}

std::unique_ptr<IdlenessPredictor>
PredictorRegistry::make(const std::string &key,
                        const PredictorContext &ctx) const
{
    return at(key).factory(ctx);
}

double
PredictorRegistry::storageBits(const std::string &key,
                               const PredictorAreaContext &ctx) const
{
    const Entry entry = at(key);
    return entry.area ? entry.area(ctx) : 0.0;
}

bool
PredictorRegistry::contains(const std::string &key) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    return entries.count(key) != 0;
}

std::vector<std::string>
PredictorRegistry::keys() const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    std::vector<std::string> out;
    for (const auto &[key, entry] : entries)
        out.push_back(key);
    return out;
}

} // namespace dstrange::strange
