/**
 * @file
 * The random number buffer DR-STRaNGe places in the memory controller.
 * Random bits generated during (predicted) idle DRAM periods are stored
 * here and 64-bit random number requests are served from it with low
 * latency. Served bits are discarded (each number is unique, Section 6).
 */

#ifndef DSTRANGE_STRANGE_RANDOM_BUFFER_H
#define DSTRANGE_STRANGE_RANDOM_BUFFER_H

#include <cstdint>

#include "common/types.h"

namespace dstrange::strange {

/**
 * Bit-granularity accounting of a small SRAM buffer of 64-bit random
 * numbers. Fractional bit credit is allowed because the Figure-2 sweep
 * mechanisms yield fractional bits per round; a request is only served
 * once 64 whole bits are available.
 */
class RandomNumberBuffer
{
  public:
    /** @param entries64 capacity in 64-bit numbers (0 = no buffer). */
    explicit RandomNumberBuffer(unsigned entries64);

    /** Capacity in bits. */
    double capacityBits() const { return capacity; }

    /** Bits currently buffered. */
    double levelBits() const { return level; }

    bool full() const { return level >= capacity; }
    bool empty() const { return level <= 0.0; }

    /** true when a 64-bit request can be served from the buffer. */
    bool canServe64() const { return level >= 64.0; }

    /**
     * Deposit harvested bits.
     * @return the number of bits actually accepted (the rest overflow
     *         and are discarded, matching a full hardware buffer).
     */
    double deposit(double bits);

    /**
     * Serve one 64-bit random number request.
     * @pre canServe64()
     */
    void serve64();

    /** Number of 64-bit requests served from the buffer. */
    std::uint64_t servedCount() const { return served; }

    /** Total bits ever deposited (excluding overflow). */
    double totalDeposited() const { return deposited; }

    /** Total bits that arrived while full and were discarded. */
    double totalOverflowed() const { return overflowed; }

  private:
    double capacity;
    double level = 0.0;
    std::uint64_t served = 0;
    double deposited = 0.0;
    double overflowed = 0.0;
};

} // namespace dstrange::strange

#endif // DSTRANGE_STRANGE_RANDOM_BUFFER_H
