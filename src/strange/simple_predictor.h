/**
 * @file
 * The lightweight table-based DRAM idleness predictor of Section 5.1.2:
 * a per-channel table of 2-bit saturating counters indexed by the last
 * accessed memory address.
 */

#ifndef DSTRANGE_STRANGE_SIMPLE_PREDICTOR_H
#define DSTRANGE_STRANGE_SIMPLE_PREDICTOR_H

#include <vector>

#include "strange/idleness_predictor.h"

namespace dstrange::strange {

/**
 * 256-entry (default) table of 2-bit saturating counters per channel.
 * An idle period is predicted long when the entry selected by the last
 * accessed address has counter value >= 2. Training increments the
 * counter when the observed period reached PeriodThreshold and decrements
 * it otherwise.
 */
class SimpleIdlenessPredictor : public IdlenessPredictor
{
  public:
    struct Config
    {
        unsigned tableEntries = 256;
        Cycle periodThreshold = 40;
    };

    explicit SimpleIdlenessPredictor(const Config &config);

    bool predictLong(Addr last_addr) override;
    bool peekLong(Addr last_addr) const override;
    void periodEnded(Addr last_addr, Cycle idle_length) override;

    /** Direct counter inspection for tests. */
    unsigned counterValue(Addr last_addr) const;

    const Config &config() const { return cfg; }

  private:
    unsigned indexOf(Addr addr) const;

    Config cfg;
    std::vector<std::uint8_t> counters;
    bool lastPrediction = false;
    bool predictionPending = false;
};

} // namespace dstrange::strange

#endif // DSTRANGE_STRANGE_SIMPLE_PREDICTOR_H
