/**
 * @file
 * Shared or partitioned random number buffer. Section 6 proposes
 * partitioning the random number buffer across threads as a covert- and
 * side-channel countermeasure: with per-application partitions, one
 * application's random number consumption cannot be observed through
 * another application's buffer-hit latency.
 */

#ifndef DSTRANGE_STRANGE_BUFFER_SET_H
#define DSTRANGE_STRANGE_BUFFER_SET_H

#include <vector>

#include "common/types.h"
#include "strange/random_buffer.h"

namespace dstrange::strange {

/**
 * A set of random number buffers: either one buffer shared by all
 * applications (the default, highest-performance configuration) or one
 * private partition per application (the isolation configuration).
 * Fill bits go to the emptiest partition so no application starves.
 */
class BufferSet
{
  public:
    /**
     * @param entries64 total capacity in 64-bit numbers
     * @param partitions number of partitions; 0 or 1 = one shared buffer
     */
    BufferSet(unsigned entries64, unsigned partitions);

    bool partitioned() const { return buffers.size() > 1; }

    /** true when @p core's (or the shared) buffer can serve 64 bits. */
    bool canServe64(CoreId core) const;

    /** Serve one 64-bit request for @p core. @pre canServe64(core) */
    void serve64(CoreId core);

    /**
     * Deposit harvested bits into the emptiest partition (bits spill
     * to the next-emptiest when a partition fills).
     * @return bits accepted.
     */
    double deposit(double bits);

    /** true when every partition is full. */
    bool full() const;

    /** Total buffered bits across partitions. */
    double levelBits() const;

    /** Total capacity in bits. */
    double capacityBits() const;

    /** Total 64-bit serves across partitions. */
    std::uint64_t servedCount() const;

    /** Direct partition access (tests/telemetry). */
    const RandomNumberBuffer &partition(std::size_t i) const
    {
        return buffers[i];
    }
    std::size_t partitionCount() const { return buffers.size(); }

  private:
    const RandomNumberBuffer &bufferFor(CoreId core) const;
    RandomNumberBuffer &bufferFor(CoreId core);

    std::vector<RandomNumberBuffer> buffers;
};

} // namespace dstrange::strange

#endif // DSTRANGE_STRANGE_BUFFER_SET_H
