/**
 * @file
 * Interface for DRAM idleness predictors. The memory controller consults
 * a predictor when a channel's request queues drain (or fall below the
 * low-utilization threshold) and trains it when the idle period ends.
 */

#ifndef DSTRANGE_STRANGE_IDLENESS_PREDICTOR_H
#define DSTRANGE_STRANGE_IDLENESS_PREDICTOR_H

#include <cstdint>

#include "common/types.h"

namespace dstrange::strange {

/** Accuracy bookkeeping shared by all predictor implementations. */
struct PredictorStats
{
    std::uint64_t predictions = 0;
    std::uint64_t correct = 0;
    /** Short period predicted long: RNG interferes with regular traffic. */
    std::uint64_t falsePositives = 0;
    /** Long period predicted short: a generation opportunity is wasted. */
    std::uint64_t falseNegatives = 0;

    double
    accuracy() const
    {
        return predictions == 0
                   ? 0.0
                   : static_cast<double>(correct) /
                         static_cast<double>(predictions);
    }
};

/**
 * Predicts whether the idle period starting now will be long enough
 * (>= PeriodThreshold cycles) to generate a batch of random bits.
 */
class IdlenessPredictor
{
  public:
    virtual ~IdlenessPredictor() = default;

    /**
     * Called once at the start of each idle (or low-utilization) period.
     * @param last_addr the last accessed memory address on the channel.
     * @retval true the period is predicted long (generate).
     */
    virtual bool predictLong(Addr last_addr) = 0;

    /**
     * Side-effect-free prediction for the low-utilization extension:
     * reuses the trained state without registering a scored prediction.
     */
    virtual bool peekLong(Addr last_addr) const = 0;

    /**
     * Called once at the end of the period with the observed length so
     * the predictor can train and score its earlier prediction.
     */
    virtual void periodEnded(Addr last_addr, Cycle idle_length) = 0;

    const PredictorStats &stats() const { return statistics; }

  protected:
    /** Score one resolved prediction. */
    void
    score(bool predicted_long, bool actually_long)
    {
        statistics.predictions++;
        if (predicted_long == actually_long)
            statistics.correct++;
        else if (predicted_long)
            statistics.falsePositives++;
        else
            statistics.falseNegatives++;
    }

    PredictorStats statistics;
};

} // namespace dstrange::strange

#endif // DSTRANGE_STRANGE_IDLENESS_PREDICTOR_H
