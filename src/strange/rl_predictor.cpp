#include "strange/rl_predictor.h"

#include <cassert>

namespace dstrange::strange {

RlIdlenessPredictor::RlIdlenessPredictor(const Config &config)
    : cfg(config), stateMask((1u << config.stateBits) - 1),
      q(std::size_t(2) << config.stateBits, 0.0), explore(config.seed)
{
    assert(cfg.stateBits > 0 && cfg.stateBits <= 20);
    assert(cfg.alpha > 0.0 && cfg.alpha <= 1.0);
}

unsigned
RlIdlenessPredictor::stateOf(Addr last_addr) const
{
    // High-order address bits at region granularity (see
    // simple_predictor.cpp) XOR'ed with the 10-bit long/short history of
    // recent idle periods.
    constexpr unsigned kRegionShift = 22;
    const auto addr_bits =
        static_cast<unsigned>(mix64(last_addr >> kRegionShift) & stateMask);
    return (addr_bits ^ idleHistory) & stateMask;
}

bool
RlIdlenessPredictor::predictLong(Addr last_addr)
{
    const unsigned s = stateOf(last_addr);
    const double q_wait = q[2 * s];
    const double q_gen = q[2 * s + 1];

    bool generate;
    if (explore.nextDouble() < cfg.epsilon)
        generate = explore.nextBool(0.5);
    else if (q_gen == q_wait)
        generate = explore.nextBool(0.5); // break ties without bias
    else
        generate = q_gen > q_wait;

    pendingState = s;
    pendingAction = generate;
    predictionPending = true;
    return generate;
}

bool
RlIdlenessPredictor::peekLong(Addr last_addr) const
{
    const unsigned s = stateOf(last_addr);
    return q[2 * s + 1] > q[2 * s];
}

void
RlIdlenessPredictor::periodEnded(Addr last_addr, Cycle idle_length)
{
    (void)last_addr; // the state was latched when the prediction was made
    const bool actually_long = idle_length >= cfg.periodThreshold;

    if (predictionPending) {
        double reward;
        if (pendingAction && actually_long)
            reward = cfg.rewardCorrectGenerate;
        else if (!pendingAction && !actually_long)
            reward = cfg.rewardCorrectWait;
        else if (pendingAction)
            reward = cfg.penaltyFalsePositive;
        else
            reward = cfg.penaltyFalseNegative;

        double &qv = q[2 * pendingState + (pendingAction ? 1 : 0)];
        qv = (1.0 - cfg.alpha) * qv + cfg.alpha * reward;

        score(pendingAction, actually_long);
        predictionPending = false;
    }

    idleHistory =
        ((idleHistory << 1) | (actually_long ? 1u : 0u)) & stateMask;
}

double
RlIdlenessPredictor::qValue(unsigned state, bool generate) const
{
    assert(state <= stateMask);
    return q[2 * state + (generate ? 1 : 0)];
}

} // namespace dstrange::strange
