/**
 * @file
 * String-keyed factory registry for DRAM idleness predictors. The memory
 * controller instantiates one predictor per channel through this
 * registry, so a new prediction policy plugs into every DR-STRaNGe
 * configuration — sweeps, CLI, benches — by registering a factory from
 * any linked code, without editing src/strange.
 *
 * Each entry may also supply a storage-cost model so the area model
 * (sim/area_model.h) can price custom predictors without a switch.
 */

#ifndef DSTRANGE_STRANGE_PREDICTOR_REGISTRY_H
#define DSTRANGE_STRANGE_PREDICTOR_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "strange/idleness_predictor.h"
#include "strange/rl_predictor.h"

namespace dstrange::strange {

/** Everything a predictor factory may need at construction time. */
struct PredictorContext
{
    unsigned channel = 0; ///< Channel index (for per-channel seeds).
    unsigned tableEntries = 256;
    Cycle periodThreshold = 40;
    RlIdlenessPredictor::Config rlConfig{};
};

/**
 * Factory producing one channel's predictor. Returning nullptr is legal
 * and means "no predictor": the controller treats every quiet period as
 * long (the paper's simple-buffering configuration).
 */
using PredictorFactory =
    std::function<std::unique_ptr<IdlenessPredictor>(
        const PredictorContext &)>;

/** Storage cost of one controller's worth of predictor state, in bits. */
struct PredictorAreaContext
{
    unsigned channels = 1;
    unsigned tableEntries = 256;
    RlIdlenessPredictor::Config rlConfig{};
};

using PredictorAreaModel =
    std::function<double(const PredictorAreaContext &)>;

/**
 * Process-global predictor registry. Built-in policies are registered on
 * first access:
 *
 *   "none"    no predictor — every quiet period is assumed long
 *   "simple"  2-bit saturating counter table (Section 5.1.2)
 *   "rl"      Q-learning agent (Section 5.1.2)
 *
 * Thread-safe: lookups take a shared lock and add() an exclusive one,
 * so parallel sweeps (sim::SweepRunner) can instantiate predictors
 * while user code registers new ones.
 */
class PredictorRegistry
{
  public:
    static PredictorRegistry &instance();

    /**
     * Register a factory (and optional storage model) under @p key.
     * @throws std::invalid_argument if @p key is empty or already taken.
     */
    void add(const std::string &key, PredictorFactory factory,
             PredictorAreaModel area = nullptr);

    /**
     * Instantiate the predictor registered under @p key (may be null —
     * see PredictorFactory).
     * @throws std::out_of_range if @p key is unknown (the message lists
     *         the registered keys).
     */
    std::unique_ptr<IdlenessPredictor>
    make(const std::string &key, const PredictorContext &ctx) const;

    /**
     * Predictor storage in bits for the area model; 0 when the entry
     * registered no storage model.
     * @throws std::out_of_range if @p key is unknown.
     */
    double storageBits(const std::string &key,
                       const PredictorAreaContext &ctx) const;

    bool contains(const std::string &key) const;

    /** Registered keys in sorted order. */
    std::vector<std::string> keys() const;

  private:
    struct Entry
    {
        PredictorFactory factory;
        PredictorAreaModel area;
    };

    PredictorRegistry();
    Entry at(const std::string &key) const;

    mutable std::shared_mutex mu;
    std::map<std::string, Entry> entries;
};

} // namespace dstrange::strange

#endif // DSTRANGE_STRANGE_PREDICTOR_REGISTRY_H
