#include "strange/buffer_set.h"

#include <algorithm>
#include <cassert>

namespace dstrange::strange {

BufferSet::BufferSet(unsigned entries64, unsigned partitions)
{
    const unsigned n = std::max(1u, partitions);
    // Distribute capacity; remainders go to the first partitions.
    const unsigned base = entries64 / n;
    const unsigned extra = entries64 % n;
    buffers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        buffers.emplace_back(base + (i < extra ? 1 : 0));
}

const RandomNumberBuffer &
BufferSet::bufferFor(CoreId core) const
{
    return buffers[partitioned() ? core % buffers.size() : 0];
}

RandomNumberBuffer &
BufferSet::bufferFor(CoreId core)
{
    return buffers[partitioned() ? core % buffers.size() : 0];
}

bool
BufferSet::canServe64(CoreId core) const
{
    return bufferFor(core).canServe64();
}

void
BufferSet::serve64(CoreId core)
{
    bufferFor(core).serve64();
}

double
BufferSet::deposit(double bits)
{
    double accepted = 0.0;
    while (bits > 0.0) {
        auto it = std::min_element(
            buffers.begin(), buffers.end(),
            [](const RandomNumberBuffer &a, const RandomNumberBuffer &b) {
                // Compare fill fractions so uneven partitions behave.
                const double fa =
                    a.capacityBits() > 0 ? a.levelBits() / a.capacityBits()
                                         : 1.0;
                const double fb =
                    b.capacityBits() > 0 ? b.levelBits() / b.capacityBits()
                                         : 1.0;
                return fa < fb;
            });
        const double taken = it->deposit(bits);
        if (taken <= 0.0)
            break; // Everything is full.
        accepted += taken;
        bits -= taken;
    }
    return accepted;
}

bool
BufferSet::full() const
{
    for (const RandomNumberBuffer &b : buffers)
        if (!b.full())
            return false;
    return true;
}

double
BufferSet::levelBits() const
{
    double level = 0.0;
    for (const RandomNumberBuffer &b : buffers)
        level += b.levelBits();
    return level;
}

double
BufferSet::capacityBits() const
{
    double cap = 0.0;
    for (const RandomNumberBuffer &b : buffers)
        cap += b.capacityBits();
    return cap;
}

std::uint64_t
BufferSet::servedCount() const
{
    std::uint64_t served = 0;
    for (const RandomNumberBuffer &b : buffers)
        served += b.servedCount();
    return served;
}

} // namespace dstrange::strange
