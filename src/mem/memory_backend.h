/**
 * @file
 * The timing-model seam between the memory controller and the DRAM
 * model. MemoryBackend is the exact call surface the controller, the
 * schedulers, and the TRNG engine exercised on dram::DramChannel —
 * issue-legality probing, command issue, refresh/RNG/power-down state,
 * and the fast-forward horizon queries — extracted into an abstract
 * interface so an alternative timing model (an analytical fixed-latency
 * backend, or an external simulator adapter) can be swapped in behind a
 * mem::BackendRegistry key without touching controller code.
 *
 * Commands and bank addressing keep the DRAM vocabulary (dram::DramCmd,
 * flat rank-major bank slots): the seam abstracts *timing*, not the
 * command protocol — every backend must model what the controller can
 * observe (open rows, per-command legality, data-burst completion
 * cycles), however coarsely it accounts for time.
 */

#ifndef DSTRANGE_MEM_MEMORY_BACKEND_H
#define DSTRANGE_MEM_MEMORY_BACKEND_H

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "dram/bank.h"
#include "dram/energy_counters.h"

namespace dstrange::mem {

/**
 * One memory channel as the controller sees it: a set of flat
 * rank-major bank slots accepting DRAM commands, plus refresh, RNG-mode
 * occupancy, power-down, energy accounting, and the event-horizon
 * queries the fast-forward engine needs. dram::DramChannel is the
 * cycle-level "ddr4" implementation; FixedLatencyBackend is the
 * analytical cross-validation stub.
 */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /** Bank slots across all ranks of the channel. */
    virtual unsigned numBanks() const = 0;

    virtual unsigned numRanks() const = 0;

    /** Rank that owns flat bank slot @p bankIdx. */
    virtual unsigned rankOf(unsigned bankIdx) const = 0;

    /** Open row of bank slot @p bankIdx; dram::kNoOpenRow when closed. */
    virtual std::int64_t openRow(unsigned bankIdx) const = 0;

    /**
     * true if @p cmd may issue to @p bankIdx at @p now, considering
     * every constraint the backend models (bank/rank/bus timing,
     * refresh, RNG-mode occupancy, power-down).
     */
    virtual bool canIssue(dram::DramCmd cmd, unsigned bankIdx,
                          Cycle now) const = 0;

    /**
     * Earliest cycle at which @p cmd could legally issue to @p bankIdx
     * considering the timing fences — but NOT refresh, RNG-mode, or
     * power-down state (the fast-forward horizon tracks those as
     * separate events). With no intervening command, canIssue(cmd,
     * bankIdx, t) is false for every t below the returned cycle.
     * Requires the bank open/closed state to match the command.
     */
    virtual Cycle earliestIssueCycle(dram::DramCmd cmd,
                                     unsigned bankIdx) const = 0;

    /**
     * Issue a command.
     * @pre canIssue(cmd, bankIdx, now)
     * @return for RD/WR the cycle the data burst completes on the bus;
     *         0 for other commands.
     */
    virtual Cycle issue(dram::DramCmd cmd, unsigned bankIdx, Cycle now,
                        std::int64_t row = dram::kNoOpenRow) = 0;

    /**
     * Monotone counter that changes whenever any earliestIssueCycle()
     * result may have changed (command issue, RNG fence, refresh-path
     * command, power-down wake). Callers memoize per-queue issue
     * horizons keyed on this value. The default bumps itself on every
     * query, so backends that do not track their fences precisely are
     * simply never cached — correct, just uncached.
     */
    virtual std::uint64_t timingVersion() const { return ++fallbackTimingV; }

    /**
     * Advance refresh housekeeping by one cycle; call once per bus
     * cycle before scheduling. Backends without refresh make this a
     * no-op.
     */
    virtual void tickRefresh(Cycle now) = 0;

    /** true while refresh blocks regular issue. */
    virtual bool refreshBusy(Cycle now) const = 0;

    /**
     * Occupy the whole channel for RNG-mode operation until @p until.
     * All banks are closed and fenced; regular traffic cannot issue.
     */
    virtual void occupyForRng(Cycle until) = 0;

    /** true while the channel is held by the TRNG engine. */
    virtual bool rngBusy(Cycle now) const = 0;

    /** Record one executed TRNG round for energy accounting. */
    virtual void noteRngRound() = 0;

    /** Accumulate state residency for this cycle; call once per cycle. */
    virtual void sampleState(Cycle now) = 0;

    /**
     * Earliest cycle >= @p now at which per-cycle housekeeping
     * (tickRefresh/sampleState) does anything beyond incrementing the
     * state-residency counter selected by the current state. The caller
     * must not skip past the returned cycle; skipping less is always
     * safe. @p engine_active fences refresh staging while the TRNG
     * engine holds the channel.
     */
    virtual Cycle nextEventCycle(Cycle now, bool engine_active) const = 0;

    /**
     * Batch-apply sampleState() for bus cycles [@p from, @p to). The
     * state-residency branch must be constant over the span, which the
     * caller guarantees by bounding the span with nextEventCycle().
     */
    virtual void fastForwardState(Cycle from, Cycle to) = 0;

    virtual const dram::ChannelEnergyCounters &energyCounters() const = 0;

    /** Number of banks with an open row (across all ranks). */
    virtual unsigned openBankCount() const = 0;

    /**
     * Enable precharge power-down after @p idle_threshold idle cycles
     * (0 disables). Backends without a power model ignore the policy
     * and report poweredDown() == false forever.
     */
    virtual void setPowerDownPolicy(Cycle idle_threshold) = 0;

    /** true while every rank is in precharge power-down. */
    virtual bool poweredDown() const = 0;

    /** true while at least one rank is in precharge power-down. */
    virtual bool anyRankPoweredDown() const = 0;

    /** Begin waking all powered-down ranks. */
    virtual void requestWake(Cycle now) = 0;

    /**
     * Observe every issued command (including internally issued
     * refresh-path precharges and REF). Used by verification harnesses
     * that independently re-check the JEDEC constraints, and by the
     * cross-validation tooling comparing two backends' command streams.
     */
    using CommandObserver = std::function<void(dram::DramCmd, unsigned bank,
                                               Cycle, std::int64_t row)>;
    virtual void setCommandObserver(CommandObserver observer) = 0;

  private:
    mutable std::uint64_t fallbackTimingV = 0;
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_MEMORY_BACKEND_H
