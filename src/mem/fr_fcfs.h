/**
 * @file
 * FR-FCFS scheduler with an optional per-row column-access cap. With
 * cap == 0 this is classic FR-FCFS (row hits first, then oldest); with
 * cap == 16 it is the paper's baseline FR-FCFS+Cap configuration, which
 * bounds how long a stream of row hits may starve a conflicting request.
 */

#ifndef DSTRANGE_MEM_FR_FCFS_H
#define DSTRANGE_MEM_FR_FCFS_H

#include <cstdint>
#include <vector>

#include "mem/scheduler.h"

namespace dstrange::mem {

/** First-Ready First-Come-First-Serve scheduling policy. */
class FrFcfsScheduler : public Scheduler
{
  public:
    /**
     * @param channels number of channels (for streak bookkeeping)
     * @param banks_per_channel bank count per channel
     * @param column_cap max consecutive column accesses to one row while
     *        a conflicting request waits; 0 disables the cap
     */
    FrFcfsScheduler(unsigned channels, unsigned banks_per_channel,
                    unsigned column_cap);

    int pick(const SchedContext &ctx) override;

    /**
     * O(1) short-circuit: the queue is age-ordered, so when the front
     * request is an issuable, non-cap-blocked row hit it is exactly
     * pass 1's oldest winner and pick() must return 0.
     */
    int forcedPick(const SchedContext &ctx) const override;

    void onColumnIssued(const Request &req, unsigned channel_id) override;

    /** FR-FCFS has no per-cycle housekeeping; never blocks skipping. */
    Cycle nextEventCycle(Cycle now) const override
    {
        (void)now;
        return kNoEvent;
    }

  private:
    struct BankStreak
    {
        std::int64_t row = -1;
        unsigned streak = 0;
    };

    bool capBlocked(const SchedContext &ctx, const Request &req) const;

    unsigned banksPerChannel;
    unsigned columnCap;
    std::vector<BankStreak> streaks; ///< [channel * banks + bank]
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_FR_FCFS_H
