/**
 * @file
 * Scheduler interface for picking the next request within one channel's
 * queue. The inter-queue decision (RNG queue vs regular queue) is a
 * separate policy (see mem/rng_aware.h); these schedulers order regular
 * requests, exactly like the baselines the paper compares against.
 */

#ifndef DSTRANGE_MEM_SCHEDULER_H
#define DSTRANGE_MEM_SCHEDULER_H

#include <vector>

#include "mem/memory_backend.h"
#include "mem/request_queue.h"

namespace dstrange::mem {

/** Everything a scheduler needs to rank one channel's candidates. */
struct SchedContext
{
    const RequestQueue &queue;
    const MemoryBackend &channel;
    unsigned channelId = 0;
    Cycle now = 0;
};

/** Index-based pick result; kNoPick when nothing can issue this cycle. */
inline constexpr int kNoPick = -1;

/** forcedPick() result meaning "run the full pick() scan". */
inline constexpr int kUnknownPick = -2;

/**
 * Intra-queue memory request scheduler. Implementations must be
 * work-conserving: if any request's next command can legally issue at
 * @p now, pick() must not return kNoPick.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Choose the queue index whose next DRAM command to issue now. */
    virtual int pick(const SchedContext &ctx) = 0;

    /**
     * O(1) fast path for batch mode: when the policy can prove its
     * choice without scanning the queue, return the index pick() would
     * return (or kNoPick); otherwise return kUnknownPick and the caller
     * falls back to the full pick() scan. Must NEVER disagree with
     * pick() — batch mode is bit-identity-checked against the stepped
     * run.
     */
    virtual int
    forcedPick(const SchedContext &ctx) const
    {
        (void)ctx;
        return kUnknownPick;
    }

    /**
     * Notify that a request's *column* command was issued (the request
     * leaves the queue). Used for streak bookkeeping.
     */
    virtual void onColumnIssued(const Request &req, unsigned channel_id) = 0;

    /** Per-cycle housekeeping (e.g. BLISS blacklist clearing). */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * Earliest cycle >= @p now at which tick() does real work, used by
     * the fast-forward engine to skip quiescent stretches. The default
     * returns @p now — "assume per-cycle work every cycle" — which is
     * always correct but disables cycle skipping entirely; schedulers
     * whose tick() is a no-op (or only acts at computable cycles, like
     * BLISS's clearing interval) should override this so simulations
     * using them can fast-forward.
     */
    virtual Cycle nextEventCycle(Cycle now) const { return now; }
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_SCHEDULER_H
