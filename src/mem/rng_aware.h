/**
 * @file
 * The RNG-aware inter-queue scheduling policy of Section 5.2: decides,
 * per channel and per cycle, whether to serve the regular read queue or
 * the RNG request queue, based on OS-assigned application priorities,
 * with the paper's anti-starvation rules and stall-limit backstop.
 */

#ifndef DSTRANGE_MEM_RNG_AWARE_H
#define DSTRANGE_MEM_RNG_AWARE_H

#include <deque>
#include <vector>

#include "mem/request_queue.h"

namespace dstrange::mem {

/** Which queue a channel should serve this cycle. */
enum class QueueChoice : std::uint8_t
{
    None,    ///< Nothing pending.
    Regular, ///< Serve the regular read queue.
    Rng,     ///< Serve the RNG request queue (enter/stay in RNG mode).
};

/**
 * Priority-based RNG-aware queue arbitration.
 *
 * Rules (Section 5.2.1):
 *  - RNG prioritized: drain the RNG queue first; the stall-limit counter
 *    bounds how long regular reads wait.
 *  - Non-RNG prioritized: serve regular reads; switch to the RNG queue
 *    only when the oldest regular read is from an RNG application and is
 *    younger than the oldest RNG request (drain the older RNG requests).
 *  - Equal priorities: regular reads older than the oldest RNG request
 *    are served first, then RNG requests are batched to minimize mode
 *    switches.
 */
class RngAwarePolicy
{
  public:
    struct Config
    {
        Cycle stallLimit = 100;
    };

    RngAwarePolicy(unsigned channels, unsigned cores, const Config &config);

    /** Set an application's OS priority (higher = more important). */
    void setPriority(CoreId core, int priority);

    int priority(CoreId core) const { return priorities[core]; }

    /** Mark an application as an RNG application (sticky). */
    void markRngApp(CoreId core) { rngApp[core] = true; }

    bool isRngApp(CoreId core) const { return rngApp[core]; }

    /** Arbitrate between the two queues for one channel. */
    QueueChoice choose(unsigned channel, const RequestQueue &read_queue,
                       const std::deque<RngJob> &rng_jobs);

    /** Reset the stall counter of the queue that just made progress. */
    void noteServed(unsigned channel, QueueChoice served);

    /** Largest stall counter value ever reached (for tests/telemetry). */
    Cycle maxStallObserved() const { return maxStall; }

  private:
    Config cfg;
    std::vector<int> priorities;
    std::vector<bool> rngApp;

    struct StallCounters
    {
        Cycle regular = 0; ///< Cycles the regular queue was deprioritized.
        Cycle rng = 0;     ///< Cycles the RNG queue was deprioritized.
    };
    std::vector<StallCounters> stalls; ///< Per channel.
    Cycle maxStall = 0;
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_RNG_AWARE_H
