/**
 * @file
 * The RNG-aware inter-queue scheduling policy of Section 5.2: decides,
 * per channel and per cycle, whether to serve the regular read queue or
 * the RNG request queue, based on OS-assigned application priorities,
 * with the paper's anti-starvation rules and stall-limit backstop.
 */

#ifndef DSTRANGE_MEM_RNG_AWARE_H
#define DSTRANGE_MEM_RNG_AWARE_H

#include <deque>
#include <vector>

#include "mem/request_queue.h"

namespace dstrange::mem {

/** Which queue a channel should serve this cycle. */
enum class QueueChoice : std::uint8_t
{
    None,    ///< Nothing pending.
    Regular, ///< Serve the regular read queue.
    Rng,     ///< Serve the RNG request queue (enter/stay in RNG mode).
};

/**
 * Priority-based RNG-aware queue arbitration.
 *
 * Rules (Section 5.2.1):
 *  - RNG prioritized: drain the RNG queue first; the stall-limit counter
 *    bounds how long regular reads wait.
 *  - Non-RNG prioritized: serve regular reads; switch to the RNG queue
 *    only when the oldest regular read is from an RNG application and is
 *    younger than the oldest RNG request (drain the older RNG requests).
 *  - Equal priorities: regular reads older than the oldest RNG request
 *    are served first, then RNG requests are batched to minimize mode
 *    switches.
 */
class RngAwarePolicy
{
  public:
    struct Config
    {
        Cycle stallLimit = 100;
    };

    RngAwarePolicy(unsigned channels, unsigned cores, const Config &config);

    /** Set an application's OS priority (higher = more important). */
    void setPriority(CoreId core, int priority);

    int priority(CoreId core) const { return priorities[core]; }

    /** Mark an application as an RNG application (sticky). */
    void
    markRngApp(CoreId core)
    {
        rngApp[core] = true;
        ++stateV;
    }

    bool isRngApp(CoreId core) const { return rngApp[core]; }

    /** Arbitrate between the two queues for one channel. */
    QueueChoice choose(unsigned channel, const RequestQueue &read_queue,
                       const std::deque<RngJob> &rng_jobs);

    /**
     * Pure preview of choose(): the choice the next call would return,
     * without advancing the anti-starvation counters.
     */
    QueueChoice peek(unsigned channel, const RequestQueue &read_queue,
                     const std::deque<RngJob> &rng_jobs) const;

    /**
     * One-scan snapshot of the arbitration state for the fast-forward
     * horizon: equivalent to peek() + nextEventCycle() +
     * regularPrioritized() but derived from a single pass over the
     * queues (this runs per channel on every horizon probe).
     */
    struct Arbitration
    {
        QueueChoice choice = QueueChoice::None; ///< peek() result.
        Cycle flipAt = kNoEvent; ///< nextEventCycle() result.
        bool regularPrioritized = false; ///< RNG stall counter charging.
    };
    Arbitration arbitration(unsigned channel,
                            const RequestQueue &read_queue,
                            const std::deque<RngJob> &rng_jobs,
                            Cycle now) const;

    /**
     * Earliest cycle >= @p now at which once-per-cycle choose() calls
     * (with unchanged queue contents) would do anything besides
     * incrementing a stall counter — i.e. the cycle the stall limit
     * trips and the choice flips. kNoEvent when no counter advances.
     */
    Cycle nextEventCycle(unsigned channel, const RequestQueue &read_queue,
                         const std::deque<RngJob> &rng_jobs,
                         Cycle now) const;

    /**
     * Batch-apply @p span consecutive choose() calls' stall-counter
     * increments (queue contents unchanged across the span).
     * @pre the span ends at or before nextEventCycle()'s result
     */
    void fastForward(unsigned channel, const RequestQueue &read_queue,
                     const std::deque<RngJob> &rng_jobs, Cycle span);

    /** Reset the stall counter of the queue that just made progress. */
    void noteServed(unsigned channel, QueueChoice served);

    /**
     * Invalidate the memoized pressure classification. The controller
     * calls this whenever RNG-queue *membership* changes (push/pop);
     * bit-collection progress on the front job is irrelevant to
     * pressure() and needs no notification.
     */
    void noteJobsChanged() { ++stateV; }

    /** Largest stall counter value ever reached (for tests/telemetry). */
    Cycle maxStallObserved() const { return maxStall; }

  private:
    /**
     * The pressure the (unchanged) queue state puts on the stall
     * counters each cycle: which counter choose() charges while it
     * keeps preferring the other queue, or None when the decision is
     * pure (at most one queue pending, or the old-RNG-drain rule).
     */
    enum class Pressure : std::uint8_t
    {
        None,       ///< Pure decision; no counter advances.
        OnRegular,  ///< Choice is Rng; the regular counter charges.
        OnRng,      ///< Choice is Regular; the RNG counter charges.
    };
    Pressure pressure(const RequestQueue &read_queue,
                      const std::deque<RngJob> &rng_jobs) const;
    /**
     * Memoized pressure(): the classification only depends on the read
     * queue's membership (its version), the RNG queue's membership
     * (stateV, bumped by noteJobsChanged()), and the priority tables
     * (stateV, bumped by setPriority()/markRngApp()). pressure() runs a
     * full queue scan on every horizon probe of every channel, so the
     * memo carries the bulk of the per-probe arbitration cost.
     */
    Pressure pressureCached(unsigned channel,
                            const RequestQueue &read_queue,
                            const std::deque<RngJob> &rng_jobs) const;
    /** The pure choice when no counter is charging. */
    QueueChoice pureChoice(const RequestQueue &read_queue,
                           const std::deque<RngJob> &rng_jobs) const;

    Config cfg;
    std::vector<int> priorities;
    std::vector<bool> rngApp;

    struct StallCounters
    {
        Cycle regular = 0; ///< Cycles the regular queue was deprioritized.
        Cycle rng = 0;     ///< Cycles the RNG queue was deprioritized.
    };
    std::vector<StallCounters> stalls; ///< Per channel.
    Cycle maxStall = 0;

    /** Version of (RNG-queue membership, priority tables). */
    std::uint64_t stateV = 0;
    struct PressureCache
    {
        const RequestQueue *queue = nullptr;
        std::uint64_t queueV = 0;
        std::uint64_t stateV = 0;
        Pressure p = Pressure::None;
    };
    mutable std::vector<PressureCache> pcache; ///< Per channel.
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_RNG_AWARE_H
