#include "mem/request_queue.h"

// RequestQueue is header-only; this translation unit anchors the library.
