#include "mem/fixed_latency_backend.h"

#include <algorithm>
#include <cassert>

namespace dstrange::mem {

FixedLatencyBackend::FixedLatencyBackend(const dram::DramGeometry &geometry,
                                         Cycle read_latency,
                                         Cycle write_latency, Cycle column_gap)
    : ranks(geometry.ranksPerChannel), banksEach(geometry.banksPerRank),
      readLatency(read_latency), writeLatency(write_latency),
      columnGap(column_gap),
      openRows(geometry.banksPerChannel(), dram::kNoOpenRow)
{
    assert(readLatency > 0 && writeLatency > 0);
}

Cycle
FixedLatencyBackend::earliestIssueCycle(dram::DramCmd cmd,
                                        unsigned bankIdx) const
{
    (void)bankIdx;
    Cycle earliest = cmdBusFreeAt;
    if (cmd == dram::DramCmd::Rd || cmd == dram::DramCmd::Wr)
        earliest = std::max(earliest, nextColAt);
    return earliest;
}

bool
FixedLatencyBackend::canIssue(dram::DramCmd cmd, unsigned bankIdx,
                              Cycle now) const
{
    if (rngBusy(now))
        return false;
    if (now < earliestIssueCycle(cmd, bankIdx))
        return false;
    switch (cmd) {
      case dram::DramCmd::Act:
        return openRows[bankIdx] == dram::kNoOpenRow;
      case dram::DramCmd::Pre:
      case dram::DramCmd::Rd:
      case dram::DramCmd::Wr:
        return openRows[bankIdx] != dram::kNoOpenRow;
      case dram::DramCmd::Ref:
        return false; // The analytical model has no refresh.
    }
    return false;
}

Cycle
FixedLatencyBackend::issue(dram::DramCmd cmd, unsigned bankIdx, Cycle now,
                           std::int64_t row)
{
    assert(canIssue(cmd, bankIdx, now));
    ++timingV;
    cmdBusFreeAt = now + 1;
    Cycle done = 0;
    switch (cmd) {
      case dram::DramCmd::Act:
        openRows[bankIdx] = row;
        ++nOpen;
        counters.nAct++;
        break;
      case dram::DramCmd::Pre:
        openRows[bankIdx] = dram::kNoOpenRow;
        --nOpen;
        counters.nPre++;
        break;
      case dram::DramCmd::Rd:
        nextColAt = now + columnGap;
        done = now + readLatency;
        counters.nRd++;
        break;
      case dram::DramCmd::Wr:
        nextColAt = now + columnGap;
        done = now + writeLatency;
        counters.nWr++;
        break;
      case dram::DramCmd::Ref:
        assert(false && "fixed-latency backend issues no REF");
        break;
    }
    if (onCommand)
        onCommand(cmd, bankIdx, now, row);
    return done;
}

void
FixedLatencyBackend::occupyForRng(Cycle until)
{
    // RNG mode takes the whole channel: close every bank and fence
    // regular issue until the engine releases it.
    for (std::int64_t &r : openRows)
        r = dram::kNoOpenRow;
    nOpen = 0;
    ++timingV;
    rngBusyUntil = std::max(rngBusyUntil, until);
    cmdBusFreeAt = std::max(cmdBusFreeAt, until);
}

void
FixedLatencyBackend::sampleState(Cycle now)
{
    if (activeNow(now))
        counters.cyclesActive++;
    else
        counters.cyclesPrecharged++;
}

Cycle
FixedLatencyBackend::nextEventCycle(Cycle now, bool engine_active) const
{
    // The only per-cycle housekeeping is state sampling, whose branch
    // flips when an RNG fence expires; bank state changes only through
    // commands, which the controller tracks as its own events. While
    // the engine is active it extends the fence itself, so the expiry
    // is not an event of ours.
    if (!engine_active && rngBusy(now) && nOpen == 0)
        return rngBusyUntil;
    return kNoEvent;
}

void
FixedLatencyBackend::fastForwardState(Cycle from, Cycle to)
{
    const Cycle span = to - from;
    if (activeNow(from))
        counters.cyclesActive += span;
    else
        counters.cyclesPrecharged += span;
}

} // namespace dstrange::mem
