/**
 * @file
 * The memory controller: per-channel read/write queues, write-drain and
 * refresh handling, pluggable intra-queue schedulers, and the RNG service
 * machinery (oblivious on-demand generation, RNG-aware queueing, random
 * number buffering, greedy-oracle fill, and predictor-driven fill).
 *
 * All three of the paper's system designs — RNG-Oblivious baseline,
 * Greedy Idle, and DR-STRaNGe — are configurations of this one class, so
 * they share every substrate code path and differ only in policy.
 */

#ifndef DSTRANGE_MEM_MEMORY_CONTROLLER_H
#define DSTRANGE_MEM_MEMORY_CONTROLLER_H

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/pop_vector.h"
#include "dram/address_mapper.h"
#include "dram/dram_timings.h"
#include "fault/fault_config.h"
#include "mem/fr_fcfs.h"
#include "mem/memory_backend.h"
#include "mem/request.h"
#include "mem/request_queue.h"
#include "mem/rng_aware.h"
#include "mem/scheduler.h"
#include "strange/idleness_predictor.h"
#include "strange/buffer_set.h"
#include "strange/random_buffer.h"
#include "strange/rl_predictor.h"
#include "strange/simple_predictor.h"
#include "trng/rng_engine.h"
#include "trng/trng_mechanism.h"

namespace dstrange::fault {
class FaultPlane;
}

namespace dstrange::mem {

/** How random bits are proactively generated for the buffer. */
enum class FillMode : std::uint8_t
{
    None,         ///< Never fill; generate on demand only.
    GreedyOracle, ///< Zero-overhead oracle fill (Greedy Idle design).
    Engine,       ///< Real RNG-mode fill driven by the idleness logic.
};

/**
 * Parse a fill-mode name ("none"/"greedy-oracle"/"engine") as used by
 * SimConfig::fillPolicy and the config text format.
 * @throws std::out_of_range on an unknown name.
 */
FillMode fillModeFromName(const std::string &name);

/** Where an engine buffer-fill session is placed across channels. */
enum class FillPlacement : std::uint8_t
{
    /** The lowest-numbered eligible channel starts the session (the
     *  historical behaviour: manageEngine's channel-index order). */
    FirstIdle,
    /** Rotate the preferred start channel after every fill session so
     *  fill wear (and rank/channel occupancy) spreads evenly. */
    RoundRobin,
};

/**
 * Parse a fill-placement name ("first-idle"/"round-robin") as used by
 * SimConfig::fillPlacement and the config text format.
 * @throws std::out_of_range on an unknown name.
 */
FillPlacement fillPlacementFromName(const std::string &name);

/** Registered fill-placement names, sorted. */
std::vector<std::string> fillPlacementNames();

/** Full memory controller configuration. */
struct McConfig
{
    /** Intra-queue scheduler (mem::SchedulerRegistry key). */
    std::string scheduler = "fr-fcfs-cap";
    unsigned columnCap = 16;
    unsigned blissThreshold = 4;
    Cycle blissClearingInterval = 10000;

    unsigned readQueueCap = 32;
    unsigned writeQueueCap = 32;
    unsigned rngQueueCap = 32;
    unsigned writeDrainHigh = 28;
    unsigned writeDrainLow = 8;

    /** true: separate RNG queue + RngAwarePolicy arbitration.
     *  false: RNG-oblivious — jobs preempt all channels on arrival. */
    bool rngAwareQueueing = false;
    Cycle stallLimit = 100;

    unsigned bufferEntries = 0;      ///< 64-bit entries; 0 disables.
    /** Partition the buffer per application (Section 6 side/covert-
     *  channel countermeasure); 0/1 = one shared buffer. */
    unsigned bufferPartitions = 0;
    Cycle bufferServeLatency = 2;    ///< Buffer-hit service latency.

    FillMode fill = FillMode::None;
    /** Optional distinct TRNG mechanism for buffer filling (hybrid
     *  design, Section 8.7 future work); demand generation always uses
     *  the mechanism passed to the controller. */
    std::optional<trng::TrngMechanism> fillMechanism;
    /** Idleness predictor gating engine fill (strange::PredictorRegistry
     *  key; "none" = simple buffering, every quiet period assumed long). */
    std::string predictor = "simple";
    unsigned predictorEntries = 256;
    Cycle periodThreshold = 40;
    /** Read+write queue occupancy below which a channel counts as
     *  low-utilization (0 = idle-only fill). */
    unsigned lowUtilThreshold = 4;
    /** Precharge power-down after this many idle cycles (0 = off). */
    Cycle powerDownThreshold = 0;

    // --- Modelling-refinement ablation knobs (see DESIGN.md) ---------
    /** RNG-aware designs park channels in RNG mode between demand
     *  bursts instead of switching out after every generation. */
    bool enableParking = true;
    /** Mispredicted fill sessions abort during switch-in instead of
     *  committing to a full round. */
    bool enableFillAbort = true;
    /** Max concurrent buffer-fill channels (0 = unlimited; the paper's
     *  Section 5.1.1 selects one channel at a time). */
    unsigned fillChannelLimit = 1;
    /** Cross-channel placement of engine fill sessions. */
    FillPlacement fillPlacement = FillPlacement::FirstIdle;

    /** Address-interleaving policy (dram::MappingRegistry key). */
    std::string addressMapping = "row-bank-col-ch";

    /** Per-channel timing model (mem::BackendRegistry key). */
    std::string backend = "ddr4";
    /** Data-completion latency of a read under "fixed-latency". */
    Cycle backendReadLatency = 20;
    /** Data-completion latency of a write under "fixed-latency". */
    Cycle backendWriteLatency = 20;
    /** Column-to-column gap under "fixed-latency". */
    Cycle backendGap = 4;

    /** Deterministic fault injection + health-monitor mitigation (a
     *  default-constructed config is inert). */
    fault::FaultConfig fault;

    strange::RlIdlenessPredictor::Config rlConfig{};
};

/** Aggregate controller statistics. */
struct McStats
{
    std::uint64_t readRequests = 0;
    std::uint64_t writeRequests = 0;
    std::uint64_t rngRequests = 0;
    std::uint64_t rngServedFromBuffer = 0;
    /** Requests served entirely from the mechanism's output staging
     *  register (leftover bits of earlier demand rounds). */
    std::uint64_t rngServedFromStaging = 0;
    std::uint64_t rngJobsCompleted = 0;
    std::uint64_t readsCompleted = 0;
    std::uint64_t sumReadLatency = 0; ///< Bus cycles, arrival to data.
    std::uint64_t sumRngLatency = 0;  ///< Bus cycles, arrival to service.

    /** Fraction of RNG requests served from the buffer (Section 8.3). */
    double
    bufferServeRate() const
    {
        return rngRequests == 0 ? 0.0
                                : static_cast<double>(rngServedFromBuffer) /
                                      static_cast<double>(rngRequests);
    }
};

/**
 * Cycle-level memory controller over N DRAM channels with an integrated
 * DRAM-based TRNG.
 */
class MemoryController
{
  public:
    /** Callback invoked when a read or RNG request completes. The
     *  ServePath tag names how it was served (Dram for reads; Buffer /
     *  Staging / Engine for RNG requests). */
    using CompletionCallback = std::function<void(
        CoreId, std::uint64_t token, ReqType, ServePath)>;

    MemoryController(const McConfig &config,
                     const dram::DramTimings &timings,
                     const dram::DramGeometry &geometry,
                     const trng::TrngMechanism &mechanism,
                     unsigned num_cores);
    ~MemoryController(); // Out-of-line: fault::FaultPlane is incomplete.

    void setCompletionCallback(CompletionCallback cb);

    /** Set an application's OS priority (RNG-aware designs only). */
    void setPriority(CoreId core, int priority);

    /**
     * Enqueue a request. The caller must set type/addr/core/token;
     * arrival, seq and coord are filled in here.
     * @retval false the target queue is full — retry next cycle.
     */
    bool enqueue(Request req, Cycle now);

    /** Advance the whole memory system by one bus cycle. */
    void tick(Cycle now);

    /**
     * Earliest cycle >= @p now at which tick() could do anything beyond
     * the batchable per-cycle bookkeeping (state-residency sampling,
     * engine cycle counting, stall-counter and greedy-credit advances):
     * a completion delivery, an engine phase boundary, a refresh or
     * power-down edge, a stall-limit flip, an oracle-fill deposit, a
     * scheduler housekeeping event, or any cycle whose queue state makes
     * command issue or engine management possible. Returns @p now when
     * the current cycle itself is (or may be) such a cycle — the caller
     * must then tick normally. Never returns a cycle later than the
     * first real event, so skipping to the returned cycle is
     * bit-identical to ticking through the span.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Batch-apply the per-cycle effects of the quiescent span
     * [@p from, @p to): state-residency counters, engine
     * occupied/parked cycles and channel fences, RNG-aware stall
     * counters, and greedy-oracle idle credit.
     * @pre nextEventCycle(from) >= to
     */
    void fastForward(Cycle from, Cycle to);

    /**
     * Observe every successfully enqueued request with its arrival
     * cycle, after address mapping — the controller-boundary stream the
     * trace recorder captures (see trace/trace_writer.h). The stream
     * fully determines the controller's evolution for a fixed
     * configuration, which is what makes replay bit-identical.
     */
    using TraceSink = std::function<void(const Request &, Cycle)>;
    void setTraceSink(TraceSink sink) { traceSink = std::move(sink); }

    // --- Introspection -----------------------------------------------
    const McStats &stats() const { return statistics; }
    const MemoryBackend &channel(unsigned i) const { return *chans[i]; }
    /** Mutable access for verification harnesses (command observers). */
    MemoryBackend &channelMutable(unsigned i) { return *chans[i]; }
    /** One channel's TRNG engine (telemetry/lockstep fingerprinting). */
    const trng::RngEngine &engine(unsigned i) const { return *engines[i]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(chans.size());
    }
    const strange::BufferSet *buffer() const { return buf.get(); }

    /** Aggregated predictor accuracy across channels (empty if none). */
    std::optional<strange::PredictorStats> predictorStats() const;

    /** Recorded strict-idle period lengths for one channel (Fig. 5/18). */
    const std::vector<std::uint32_t> &idlePeriods(unsigned ch) const
    {
        return perChan[ch].idleLengths;
    }

    /** Total bus cycles channels spent held in RNG mode. */
    Cycle rngOccupiedCycles() const;

    /** Pending work indicator (used by drain-out loops in tests). */
    bool busy() const;

    /** RNG jobs currently queued (not yet fully generated). */
    std::size_t pendingRngJobs() const { return rngJobs.size(); }

    /** Bits currently held in the mechanism's staging register. */
    double stagingLevel() const { return stagingBits; }

    /** Read-queue occupancy of one channel (tests/telemetry). */
    std::size_t
    readQueueSize(unsigned ch) const
    {
        return perChan[ch].readQ->size();
    }

    /** Write-queue occupancy of one channel (tests/telemetry). */
    std::size_t
    writeQueueSize(unsigned ch) const
    {
        return perChan[ch].writeQ->size();
    }

    const McConfig &config() const { return cfg; }

    const RngAwarePolicy *policy() const { return rngPolicy.get(); }

    /**
     * Enable/disable batch mode (DS_BATCH): memoized per-queue issue
     * horizons plus the scheduler forcedPick() fast path. Pure
     * shortcuts — behaviour must stay bit-identical either way, which
     * DS_LOCKSTEP and the difftest harness verify. Off by default so a
     * bare controller behaves exactly as before; sim::System turns it
     * on alongside fast-forward.
     */
    void setBatchMode(bool on) { batchMode = on; }
    bool batchModeEnabled() const { return batchMode; }

    /**
     * true while any queued, in-flight, or RNG work belongs to a core
     * port >= @p first. System's drain loop refuses to run while the
     * service driver (whose ports start past the traced cores) has work
     * in flight, because RNG completions are delivered directly from
     * inside tick() rather than through a queue front the drain could
     * bound on.
     */
    bool hasWorkForPort(CoreId first) const;

    /** The fault-injection plane, or nullptr when no cell-fault model
     *  is configured (see fault/fault_plane.h). */
    const fault::FaultPlane *faultInjection() const
    {
        return faultPlane.get();
    }

  private:
    struct ChannelState
    {
        std::unique_ptr<RequestQueue> readQ;
        std::unique_ptr<RequestQueue> writeQ;
        bool writeDraining = false;

        /// In-flight reads awaiting their data burst (FIFO by completion).
        PopVector<Request> inflightReads;
        PopVector<Cycle> inflightDone;

        // Idle-period tracking: drives the Fig. 5/18 distributions and
        // the idleness predictor (predicted at period start, trained at
        // the arrival that ends the period).
        bool idleActive = false;
        Cycle idleStart = 0;
        bool predictionCached = false; ///< Predicted this idle period?
        bool predictedLong = false;    ///< Cached per-period prediction.
        /** Rate limiter for the low-utilization fill trigger: earliest
         *  cycle the next low-utilization session may start. */
        Cycle lowUtilNextAllowed = 0;
        /** Current engine session was started by the low-utilization
         *  trigger (it commits to one round; it is not aborted when a
         *  request arrives). */
        bool lowUtilSession = false;
        /** Current engine session served on-demand generation; such
         *  sessions park in RNG mode awaiting the next request burst
         *  instead of eagerly switching out. */
        bool demandSession = false;
        std::vector<std::uint32_t> idleLengths;

        // Greedy-oracle fill bookkeeping.
        Cycle greedyIdleCredit = 0;

        Addr lastAddr = 0;

        std::unique_ptr<strange::IdlenessPredictor> predictor;
    };

    unsigned occupancy(const ChannelState &cs) const;
    void updateIdleState(unsigned ch, Cycle now);

    /** enqueue() minus the trace-sink notification (fills in coord/seq). */
    bool enqueueAccept(Request &req, Cycle now);

    /** The queue choice the next tick would compute for @p ch. */
    QueueChoice peekChoice(unsigned ch) const;
    /** Earliest cycle >= @p now at which manageEngine(ch) changes any
     *  state (@p now = this cycle; kNoEvent = only on external input).
     *  @p choice is peekChoice(ch), computed once by the caller. */
    Cycle manageEngineEventCycle(unsigned ch, Cycle now,
                                 QueueChoice choice) const;
    /** Earliest cycle >= @p now at which serveChannel(ch) changes any
     *  state — a drain-flag transition, a wake, or the first cycle any
     *  queued request's next DRAM command can legally issue. */
    Cycle serveChannelEventCycle(unsigned ch, Cycle now,
                                 QueueChoice choice) const;
    /** First cycle >= @p now any of @p queue's requests can issue. */
    Cycle nextIssueCycle(const RequestQueue &queue, unsigned ch,
                         Cycle now) const;

    /**
     * Memoized full-queue issue horizon, valid while neither the
     * backend's timing fences nor the queue's membership have changed.
     * Two slots per channel: [0] readQ, [1] writeQ. Only consulted in
     * batch mode; the sentinel versions make the first probe a miss.
     */
    struct IssueHorizon
    {
        std::uint64_t timingV = ~std::uint64_t{0};
        std::uint64_t queueV = ~std::uint64_t{0};
        Cycle earliest = 0;
    };
    /** Next greedy-oracle deposit cycle on the selected channel, or
     *  @p now when credit bookkeeping mutates state this cycle. */
    Cycle greedyNextEventCycle(Cycle now) const;

    /**
     * One steadily-generating engine's round-completion stream: a
     * stable (wind-free, management-quiescent) engine in Round or
     * SwitchingIn produces bitsPerRound every roundLatency cycles, the
     * first batch landing on the tick at `next`.
     */
    struct Producer
    {
        Cycle next = 0;   ///< Tick cycle of the next round completion.
        Cycle period = 0; ///< Round latency.
        double bits = 0.0;
        unsigned ch = 0;
        /** Stopping engine: exactly one more round completes, then the
         *  switch-out (whose end bounds the span) begins. */
        bool oneShot = false;

        bool operator==(const Producer &) const = default;
    };
    /** Collect the stable producers into producerScratch (time/ch
     *  keyed exactly like the per-cycle tick order). */
    void collectProducers(Cycle now) const;
    /**
     * First production tick in [now, bound) whose round completion has
     * a non-batchable effect: finishing the front RNG job, or the
     * deposit that makes the buffer full. kNoEvent when no such tick
     * exists below @p bound (earlier completions only accumulate).
     */
    Cycle productionEventCycle(Cycle now, Cycle bound) const;

    /** Iteration bound for production-stream simulation; reaching it
     *  yields a conservative checkpoint event instead. */
    static constexpr unsigned kMaxProductionSteps = 512;

    /** true when some channel is running a buffer-fill session. Fill
     *  uses one selected channel at a time (Section 5.1.1: "selects a
     *  channel for RNG"); demand generation still uses all channels. */
    bool fillSessionActive() const;
    /** Side-effect-free idle-fill readiness of @p ch (no predictor
     *  consultation; used only for cross-channel placement ordering). */
    bool fillReady(unsigned ch, Cycle now) const;
    /** true when the placement policy lets @p ch start a fill session
     *  this cycle (always true under FillPlacement::FirstIdle). */
    bool fillStartAllowed(unsigned ch, Cycle now) const;
    void routeBits(double bits, Cycle now);
    void serveChannel(unsigned ch, Cycle now);
    void manageEngine(unsigned ch, Cycle now);

    /** Per-channel queue choice, computed once per tick (the policy's
     *  stall counters advance exactly once per channel per cycle). */
    std::vector<QueueChoice> choiceNow;

    McConfig cfg;
    std::unique_ptr<const dram::AddressMapping> mapper;
    trng::TrngMechanism mech;     ///< Demand-generation mechanism.
    trng::TrngMechanism fillMech; ///< Fill mechanism (== mech unless hybrid).
    unsigned numCores;

    std::vector<std::unique_ptr<MemoryBackend>> chans;
    std::vector<std::unique_ptr<trng::RngEngine>> engines;
    std::vector<ChannelState> perChan;

    std::unique_ptr<Scheduler> readSched;
    FrFcfsScheduler writeSched; ///< Plain FR-FCFS for write drains.
    std::unique_ptr<RngAwarePolicy> rngPolicy;

    std::deque<RngJob> rngJobs;
    std::unique_ptr<strange::BufferSet> buf;
    /** Round auditing + health monitor; null when no cell-fault model
     *  is listed (the common case — zero overhead when off). */
    std::unique_ptr<fault::FaultPlane> faultPlane;
    /**
     * The TRNG mechanism's output staging register: bits left over from
     * demand rounds beyond the requested 64 (significant for QUAC-TRNG's
     * 512-bit rounds). Present in every design — it is part of the
     * mechanism, not of DR-STRaNGe. Capped at one round's yield.
     */
    double stagingBits = 0.0;
    /// Buffer hits completing after the fixed serve latency.
    PopVector<RngJob> pendingBufferServes;
    PopVector<Cycle> pendingBufferServeDone;

    CompletionCallback onComplete;
    TraceSink traceSink;
    std::uint64_t nextSeq = 0;
    McStats statistics;

    /** Rotation cursor for FillPlacement::RoundRobin (unused under
     *  FirstIdle, so the default placement stays bit-identical). */
    unsigned fillPreferredCh = 0;

    /** Scratch for collectProducers (avoids per-horizon allocation). */
    mutable std::vector<Producer> producerScratch;

    /**
     * Version of the production-relevant state the producer walk reads
     * *besides* the producer snapshot itself: RNG-job membership and
     * front-job fill level, buffer level, and fault-plane audit state.
     * Bumped at every mutation of those (routeBits, RNG enqueue paths,
     * direct buffer deposits/serves, discarded fault rounds).
     */
    std::uint64_t productionV = 0;
    /**
     * Memo of productionEventCycle()'s bound-independent walk result.
     * The walk never reads its bound except to clamp — the candidate
     * round cycles it considers are non-decreasing, so the bounded
     * result equals the unbounded event iff that event lies below the
     * bound. Engine phases are captured by comparing the producer
     * snapshot; everything else bumps productionV. Horizon probes
     * between round completions then reuse the cached event instead of
     * re-simulating the production stream.
     */
    struct ProductionCache
    {
        std::uint64_t v = 0; ///< productionV + 1 at fill (0 = empty).
        std::vector<Producer> producers; ///< Snapshot at fill time.
        Cycle event = kNoEvent; ///< Unbounded walk result.
    };
    mutable ProductionCache prodCache;

    bool batchMode = false; ///< See setBatchMode().
    /** Per-channel {readQ, writeQ} horizon memos (see IssueHorizon). */
    mutable std::vector<std::array<IssueHorizon, 2>> horizonCache;

    /** Cap on stored idle-period samples per channel (memory bound). */
    static constexpr std::size_t kMaxIdleSamples = 1u << 18;
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_MEMORY_CONTROLLER_H
