#include "mem/memory_controller.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "dram/mapping_registry.h"
#include "fault/fault_plane.h"
#include "fault/faulty_backend.h"
#include "mem/backend_registry.h"
#include "mem/scheduler_registry.h"
#include "strange/predictor_registry.h"

namespace dstrange::mem {

FillMode
fillModeFromName(const std::string &name)
{
    if (name == "none")
        return FillMode::None;
    if (name == "greedy-oracle")
        return FillMode::GreedyOracle;
    if (name == "engine")
        return FillMode::Engine;
    throw std::out_of_range(
        "unknown fill mode '" + name +
        "' (known: none, greedy-oracle, engine)");
}

FillPlacement
fillPlacementFromName(const std::string &name)
{
    if (name == "first-idle")
        return FillPlacement::FirstIdle;
    if (name == "round-robin")
        return FillPlacement::RoundRobin;
    throw std::out_of_range("unknown fill placement '" + name +
                            "' (known: first-idle, round-robin)");
}

std::vector<std::string>
fillPlacementNames()
{
    return {"first-idle", "round-robin"};
}

MemoryController::MemoryController(const McConfig &config,
                                   const dram::DramTimings &timings,
                                   const dram::DramGeometry &geometry,
                                   const trng::TrngMechanism &mechanism,
                                   unsigned num_cores)
    : cfg(config),
      mapper(dram::MappingRegistry::instance().make(config.addressMapping,
                                                    geometry)),
      mech(mechanism),
      fillMech(config.fillMechanism.value_or(mechanism)),
      numCores(num_cores),
      writeSched(geometry.channels, geometry.banksPerChannel(), /*cap=*/0)
{
    assert(timingsAreConsistent(timings));

    const BackendContext bctx{timings, geometry, cfg};
    for (unsigned ch = 0; ch < geometry.channels; ++ch) {
        auto backend = BackendRegistry::instance().make(cfg.backend, bctx);
        // Outage injection decorates the timing model, so it composes
        // with any registered backend; the engine and every controller
        // path see the decorator's overlaid availability.
        if (fault::hasOutageModel(cfg.fault))
            backend = std::make_unique<fault::FaultyBackend>(
                std::move(backend), cfg.fault, ch);
        chans.push_back(std::move(backend));
        chans.back()->setPowerDownPolicy(cfg.powerDownThreshold);
        engines.push_back(std::make_unique<trng::RngEngine>(
            mech, fillMech, *chans.back()));
    }

    if (fault::hasCellModels(cfg.fault))
        faultPlane = std::make_unique<fault::FaultPlane>(
            cfg.fault, geometry.channels);

    perChan.resize(geometry.channels);
    for (unsigned ch = 0; ch < geometry.channels; ++ch) {
        ChannelState &cs = perChan[ch];
        cs.readQ = std::make_unique<RequestQueue>(cfg.readQueueCap);
        cs.writeQ = std::make_unique<RequestQueue>(cfg.writeQueueCap);
        // Completion lists never outgrow the queues feeding them by
        // much; pre-sizing keeps the per-cycle loop allocation-free.
        cs.inflightReads.reserve(cfg.readQueueCap + 8);
        cs.inflightDone.reserve(cfg.readQueueCap + 8);
        if (cfg.fill == FillMode::Engine) {
            strange::PredictorContext pctx;
            pctx.channel = ch;
            pctx.tableEntries = cfg.predictorEntries;
            pctx.periodThreshold = cfg.periodThreshold;
            pctx.rlConfig = cfg.rlConfig;
            cs.predictor = strange::PredictorRegistry::instance().make(
                cfg.predictor, pctx);
        }
        // Channels start empty, i.e. idle from cycle 0; the first fill
        // prediction is made lazily by manageEngine().
        cs.idleActive = true;
    }

    const SchedulerContext sctx{geometry.channels,
                                geometry.banksPerChannel(), num_cores,
                                cfg};
    readSched = SchedulerRegistry::instance().make(cfg.scheduler, sctx);

    if (cfg.rngAwareQueueing) {
        RngAwarePolicy::Config pc;
        pc.stallLimit = cfg.stallLimit;
        rngPolicy = std::make_unique<RngAwarePolicy>(geometry.channels,
                                                     num_cores, pc);
    }

    if (cfg.bufferEntries > 0) {
        buf = std::make_unique<strange::BufferSet>(cfg.bufferEntries,
                                                   cfg.bufferPartitions);
    }

    pendingBufferServes.reserve(4 * static_cast<std::size_t>(num_cores));
    pendingBufferServeDone.reserve(
        4 * static_cast<std::size_t>(num_cores));

    horizonCache.resize(geometry.channels);
}

MemoryController::~MemoryController() = default;

void
MemoryController::setCompletionCallback(CompletionCallback cb)
{
    onComplete = std::move(cb);
}

void
MemoryController::setPriority(CoreId core, int priority)
{
    if (rngPolicy)
        rngPolicy->setPriority(core, priority);
}

unsigned
MemoryController::occupancy(const ChannelState &cs) const
{
    return static_cast<unsigned>(cs.readQ->size() + cs.writeQ->size());
}

bool
MemoryController::enqueue(Request req, Cycle now)
{
    req.arrival = now;
    const bool accepted = enqueueAccept(req, now);
    // The sink sees exactly the accepted-request stream: rejected
    // requests are retried by the issuer and recorded on the cycle the
    // retry succeeds, which is the cycle that shaped controller state.
    if (accepted && traceSink)
        traceSink(req, now);
    return accepted;
}

bool
MemoryController::enqueueAccept(Request &req, Cycle now)
{
    if (req.type == ReqType::Rng) {
        if (rngPolicy)
            rngPolicy->markRngApp(req.core);
        if (buf && buf->canServe64(req.core)) {
            buf->serve64(req.core);
            ++productionV; // Buffer level dropped.
            statistics.rngRequests++;
            statistics.rngServedFromBuffer++;
            statistics.sumRngLatency += cfg.bufferServeLatency;
            RngJob job{req.core, now, nextSeq++, req.token, 64.0,
                       ServePath::Buffer};
            pendingBufferServes.push_back(job);
            pendingBufferServeDone.push_back(now + cfg.bufferServeLatency);
            return true;
        }
        if (stagingBits >= 64.0) {
            // Leftover bits of an earlier demand round cover the request.
            stagingBits -= 64.0;
            statistics.rngRequests++;
            statistics.rngServedFromStaging++;
            statistics.sumRngLatency += cfg.bufferServeLatency;
            RngJob job{req.core, now, nextSeq++, req.token, 64.0,
                       ServePath::Staging};
            pendingBufferServes.push_back(job);
            pendingBufferServeDone.push_back(now + cfg.bufferServeLatency);
            return true;
        }
        if (rngJobs.size() >= cfg.rngQueueCap)
            return false;
        statistics.rngRequests++;
        RngJob job{req.core, now, nextSeq++, req.token, 0.0};
        // Start the job with whatever partial bits are staged.
        job.bitsCollected = stagingBits;
        stagingBits = 0.0;
        rngJobs.push_back(job);
        ++productionV; // New front job possible; membership changed.
        if (rngPolicy)
            rngPolicy->noteJobsChanged();
        return true;
    }

    req.coord = mapper->decode(req.addr);
    ChannelState &cs = perChan[req.coord.channel];
    RequestQueue &q =
        req.type == ReqType::Write ? *cs.writeQ : *cs.readQ;
    if (q.full())
        return false;
    req.seq = nextSeq++;
    q.push(req);
    if (req.type == ReqType::Read)
        statistics.readRequests++;
    else
        statistics.writeRequests++;

    // The arrival ends any idle/quiet period; the predictor trains with
    // the *previous* last-accessed address, then the address updates.
    updateIdleState(req.coord.channel, now);
    cs.lastAddr = req.addr;
    return true;
}

void
MemoryController::updateIdleState(unsigned ch, Cycle now)
{
    ChannelState &cs = perChan[ch];
    const unsigned occ = occupancy(cs);

    const bool idle_now = occ == 0;
    if (idle_now && !cs.idleActive) {
        cs.idleActive = true;
        cs.idleStart = now;
        cs.predictionCached = false;
        cs.predictedLong = false;
    } else if (!idle_now && cs.idleActive) {
        // The period ends at the first arrival: record its length for
        // the Fig. 5/18 distributions and train the predictor with the
        // previous last-accessed address (Section 5.1.2).
        cs.idleActive = false;
        const Cycle len = now - cs.idleStart;
        if (len > 0 && cs.idleLengths.size() < kMaxIdleSamples)
            cs.idleLengths.push_back(static_cast<std::uint32_t>(len));
        if (cs.predictor)
            cs.predictor->periodEnded(cs.lastAddr, len);
    }

}

void
MemoryController::routeBits(double bits, Cycle now)
{
    while (bits > 0.0 && !rngJobs.empty()) {
        RngJob &job = rngJobs.front();
        const double need = 64.0 - job.bitsCollected;
        const double take = std::min(need, bits);
        job.bitsCollected += take;
        bits -= take;
        if (job.done()) {
            statistics.rngJobsCompleted++;
            statistics.sumRngLatency += now - job.arrival;
            if (onComplete)
                onComplete(job.core, job.token, ReqType::Rng, job.path);
            rngJobs.pop_front();
            // The completed job *was* the predicted production event;
            // the next front job starts a new stream to model.
            ++productionV;
            if (rngPolicy)
                rngPolicy->noteJobsChanged();
        }
    }
    if (bits > 0.0 && buf)
        bits -= buf->deposit(bits);
    if (bits > 0.0) {
        stagingBits = std::min(stagingBits + bits,
                               std::max(mech.bitsPerRound,
                                        fillMech.bitsPerRound));
    }
}

bool
MemoryController::fillSessionActive() const
{
    if (cfg.fillChannelLimit == 0)
        return false; // Unlimited concurrent fill channels.
    unsigned active = 0;
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        if (engines[ch]->active() && !engines[ch]->parked() &&
            !perChan[ch].demandSession) {
            if (++active >= cfg.fillChannelLimit)
                return true;
        }
    }
    return false;
}

bool
MemoryController::fillReady(unsigned ch, Cycle now) const
{
    return engines[ch]->idle() && !chans[ch]->refreshBusy(now) &&
           occupancy(perChan[ch]) == 0 && perChan[ch].idleActive;
}

bool
MemoryController::fillStartAllowed(unsigned ch, Cycle now) const
{
    if (cfg.fillPlacement == FillPlacement::FirstIdle)
        return true;
    // Round-robin: the first fill-ready channel at or after the rotation
    // pointer claims the session this cycle; later ones defer. The probe
    // is side-effect-free (no predictor queries), so deferring never
    // perturbs the peer channel's prediction state.
    const unsigned n = static_cast<unsigned>(chans.size());
    for (unsigned d = 0; d < n; ++d) {
        const unsigned c = (fillPreferredCh + d) % n;
        if (c == ch)
            return true;
        if (fillReady(c, now))
            return false;
    }
    return true;
}

void
MemoryController::manageEngine(unsigned ch, Cycle now)
{
    trng::RngEngine &eng = *engines[ch];
    ChannelState &cs = perChan[ch];
    MemoryBackend &chan = *chans[ch];

    const unsigned occ = occupancy(cs);
    const bool want_demand =
        !rngJobs.empty() && choiceNow[ch] == QueueChoice::Rng;
    const bool fill_capable =
        cfg.fill == FillMode::Engine && buf && !buf->full();

    if (eng.idle()) {
        cs.lowUtilSession = false;
        cs.demandSession = false;
        if (chan.refreshBusy(now))
            return;
        if (want_demand) {
            eng.start(now, trng::RngEngine::SessionKind::Demand);
            cs.demandSession = true;
            return;
        }
        if (!fill_capable || fillSessionActive())
            return; // Fill uses one selected channel at a time (5.1.1).
        if (occ == 0 && cs.idleActive) {
            // Predict once per idle period; sessions may restart within
            // the same period while the prediction holds.
            if (!cs.predictionCached) {
                cs.predictedLong =
                    cs.predictor ? cs.predictor->predictLong(cs.lastAddr)
                                 : true; // Simple buffering (5.1.1).
                cs.predictionCached = true;
            }
            if (cs.predictedLong && fillStartAllowed(ch, now)) {
                eng.start(now, trng::RngEngine::SessionKind::Fill);
                if (cfg.fillPlacement == FillPlacement::RoundRobin)
                    fillPreferredCh =
                        (ch + 1) % static_cast<unsigned>(chans.size());
            }
        } else if (cfg.lowUtilThreshold > 0 &&
                   occ < cfg.lowUtilThreshold &&
                   now >= cs.lowUtilNextAllowed &&
                   buf->levelBits() < 0.5 * buf->capacityBits()) {
            // Low-utilization extension: short generation bursts while
            // the queue stays below the threshold and the buffer is
            // running low, gated by the trained predictor and
            // rate-limited so the few queued requests are stalled only
            // briefly between bursts (Section 5.1.2: "the predictor
            // stalls only a small number of requests").
            cs.lowUtilNextAllowed = now + 6 * cfg.periodThreshold;
            const bool fill_now =
                cs.predictor ? cs.predictor->peekLong(cs.lastAddr) : false;
            if (fill_now) {
                eng.start(now, trng::RngEngine::SessionKind::Fill);
                cs.lowUtilSession = true;
            }
        }
        return;
    }

    // Engine active: keep generating for pending demand, or keep filling
    // while the channel is strictly idle; otherwise wind down after the
    // current round (rounds cannot abort mid-flight because non-standard
    // timing parameters are in effect). Refinements:
    //  - A fill session still swapping timing parameters when a request
    //    arrives aborts outright — the mispredicted session yields
    //    nothing (low-utilization sessions start with requests queued,
    //    so they are exempt and commit to one round).
    //  - A demand session with no regular work waiting parks in RNG mode
    //    so the RNG application's next request (typically a handful of
    //    cycles away) resumes generation without another switch-in.
    const bool continue_fill = fill_capable && occ == 0;
    if (want_demand || continue_fill) {
        eng.cancelStop();
        if (eng.parked()) {
            // A hybrid engine parked in demand mode cannot fill without
            // re-switching mechanisms; wind it down instead.
            if (want_demand ||
                eng.canResumeAs(trng::RngEngine::SessionKind::Fill)) {
                eng.resume(now);
            } else {
                eng.requestStop();
            }
        }
        if (want_demand)
            cs.demandSession = true;
    } else if (cfg.enableFillAbort && eng.switchingIn() &&
               !cs.lowUtilSession && !cs.demandSession) {
        eng.abortSwitchIn(now);
    } else if (cfg.rngAwareQueueing && cfg.enableParking &&
               cs.demandSession && occ == 0 && !chan.refreshBusy(now)) {
        // Only the RNG-aware designs batch: they keep the channel in RNG
        // mode awaiting the next request burst (Section 2: interleaving
        // RNG and regular requests costs a timing-parameter swap each
        // way). The RNG-oblivious baseline switches back immediately.
        eng.requestPark();
    } else {
        eng.requestStop();
    }
}

void
MemoryController::serveChannel(unsigned ch, Cycle now)
{
    ChannelState &cs = perChan[ch];
    MemoryBackend &chan = *chans[ch];

    if (engines[ch]->active() || chan.refreshBusy(now) ||
        chan.rngBusy(now)) {
        return;
    }

    // A powered-down rank must wake before serving queued work.
    if (chan.poweredDown()) {
        if (!cs.readQ->empty() || !cs.writeQ->empty())
            chan.requestWake(now);
        return;
    }
    // Partially powered-down channel (some ranks asleep, some awake):
    // wake the sleeping ranks whenever work is queued so a request
    // targeting one of them cannot stall indefinitely, then keep serving
    // the awake ranks this cycle. Unreachable with one rank, where
    // any-powered-down implies all-powered-down.
    if (chan.anyRankPoweredDown() &&
        (!cs.readQ->empty() || !cs.writeQ->empty()))
        chan.requestWake(now);

    // Write-drain policy: drain on the high watermark or opportunistically
    // when no reads wait; stop once the low watermark is reached and reads
    // are waiting again.
    const bool reads_waiting = !cs.readQ->empty();
    if (!cs.writeDraining &&
        (cs.writeQ->size() >= cfg.writeDrainHigh ||
         (!reads_waiting && !cs.writeQ->empty()))) {
        cs.writeDraining = true;
    }
    if (cs.writeDraining &&
        (cs.writeQ->empty() ||
         (cs.writeQ->size() <= cfg.writeDrainLow && reads_waiting))) {
        cs.writeDraining = false;
    }

    RequestQueue *queue = nullptr;
    Scheduler *sched = nullptr;
    if (cs.writeDraining) {
        queue = cs.writeQ.get();
        sched = &writeSched;
    } else {
        if (!reads_waiting)
            return;
        // When the RNG queue is chosen for this channel, regular reads
        // wait; the engine is being started by manageEngine(). In the
        // RNG-oblivious configuration any pending RNG job stalls all
        // regular traffic (Section 3 baseline).
        if (!rngJobs.empty() && choiceNow[ch] == QueueChoice::Rng)
            return;
        queue = cs.readQ.get();
        sched = readSched.get();
    }

    const SchedContext ctx{*queue, chan, ch, now};
    int pick = kUnknownPick;
    if (batchMode) {
        // Cached horizon first: when no queued command's timing fence
        // has passed, every canIssue() is false and the full pick()
        // scan must return kNoPick — skip it. (Refresh/RNG/power-down
        // exclusions were already early-outed above.)
        if (nextIssueCycle(*queue, ch, now) > now)
            return;
        pick = sched->forcedPick(ctx);
#ifndef NDEBUG
        assert((pick == kUnknownPick || pick == sched->pick(ctx)) &&
               "forcedPick() must agree with pick()");
#endif
    }
    if (pick == kUnknownPick)
        pick = sched->pick(ctx);
    if (pick < 0)
        return;

    Request &req = queue->at(static_cast<std::size_t>(pick));
    const dram::DramCmd cmd = nextCommandFor(req, chan);
    const Cycle done = chan.issue(
        cmd, req.coord.bank, now, static_cast<std::int64_t>(req.coord.row));

    if (cmd == dram::DramCmd::Rd) {
        statistics.readsCompleted++;
        statistics.sumReadLatency += done - req.arrival;
        cs.inflightReads.push_back(req);
        cs.inflightDone.push_back(done);
        sched->onColumnIssued(req, ch);
        if (rngPolicy)
            rngPolicy->noteServed(ch, QueueChoice::Regular);
        queue->erase(static_cast<std::size_t>(pick));
        updateIdleState(ch, now);
    } else if (cmd == dram::DramCmd::Wr) {
        sched->onColumnIssued(req, ch);
        queue->erase(static_cast<std::size_t>(pick));
        updateIdleState(ch, now);
    }
    // ACT/PRE only advance bank state; the request stays queued.
}

void
MemoryController::tick(Cycle now)
{
    readSched->tick(now);

    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        chans[ch]->tickRefresh(now);
        chans[ch]->sampleState(now);
    }

    // 1. Deliver completed reads and buffer-served RNG requests.
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        ChannelState &cs = perChan[ch];
        while (!cs.inflightDone.empty() && cs.inflightDone.front() <= now) {
            const Request &req = cs.inflightReads.front();
            if (onComplete)
                onComplete(req.core, req.token, ReqType::Read,
                           ServePath::Dram);
            cs.inflightReads.pop_front();
            cs.inflightDone.pop_front();
        }
    }
    while (!pendingBufferServeDone.empty() &&
           pendingBufferServeDone.front() <= now) {
        const RngJob &job = pendingBufferServes.front();
        if (onComplete)
            onComplete(job.core, job.token, ReqType::Rng, job.path);
        pendingBufferServes.pop_front();
        pendingBufferServeDone.pop_front();
    }

    // 2. Advance RNG-mode engines; route any bits a finished round
    //    yields. With fault injection active, each round is audited by
    //    the fault plane first: a failing round's bits are discarded
    //    (and the health monitor reacts), which also withholds the
    //    round's noteServed — fault pressure surfaces as RNG stall.
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        const double bits = engines[ch]->tick(now);
        if (bits > 0.0) {
            if (!faultPlane ||
                faultPlane->onRound(ch, !rngJobs.empty())) {
                routeBits(bits, now);
                if (rngPolicy)
                    rngPolicy->noteServed(ch, QueueChoice::Rng);
            } else {
                // Discarded round: no bits routed, but the audit
                // rotation (and possibly the blacklist) advanced.
                ++productionV;
            }
        }
    }

    // 3. Greedy-oracle fill: once a contiguous idle stretch reaches the
    //    Period Threshold, deposit one round's bits at zero cost, then
    //    one more round per round-latency of continued idleness. Like
    //    DR-STRaNGe's engine fill, the oracle uses one selected channel
    //    at a time (the lowest-numbered idle one).
    if (cfg.fill == FillMode::GreedyOracle && buf) {
        bool selected = false;
        for (unsigned ch = 0; ch < chans.size(); ++ch) {
            ChannelState &cs = perChan[ch];
            const bool eligible = occupancy(cs) == 0 &&
                                  engines[ch]->idle() &&
                                  !chans[ch]->refreshBusy(now);
            if (!eligible) {
                cs.greedyIdleCredit = 0;
            } else if (!selected) {
                selected = true;
                cs.greedyIdleCredit++;
                if (cs.greedyIdleCredit >= cfg.periodThreshold &&
                    (cs.greedyIdleCredit - cfg.periodThreshold) %
                            fillMech.roundLatency ==
                        0 &&
                    !buf->full()) {
                    buf->deposit(fillMech.bitsPerRound);
                    ++productionV; // Buffer level rose.
                }
            }
            // Other idle channels keep their accrued credit paused.
        }
    }

    // 4. Arbitrate queues, start/stop RNG mode, then issue regular DRAM
    //    commands.
    choiceNow.assign(chans.size(), QueueChoice::None);
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        if (!cfg.rngAwareQueueing) {
            // RNG-oblivious: pending RNG work preempts every channel
            // (the same pure arbitration the fast-forward horizon
            // previews).
            choiceNow[ch] = peekChoice(ch);
        } else {
            choiceNow[ch] =
                rngPolicy->choose(ch, *perChan[ch].readQ, rngJobs);
        }
    }
    for (unsigned ch = 0; ch < chans.size(); ++ch)
        manageEngine(ch, now);
    for (unsigned ch = 0; ch < chans.size(); ++ch)
        serveChannel(ch, now);
}

QueueChoice
MemoryController::peekChoice(unsigned ch) const
{
    if (!cfg.rngAwareQueueing) {
        return !rngJobs.empty()          ? QueueChoice::Rng
               : !perChan[ch].readQ->empty() ? QueueChoice::Regular
                                             : QueueChoice::None;
    }
    return rngPolicy->peek(ch, *perChan[ch].readQ, rngJobs);
}

Cycle
MemoryController::manageEngineEventCycle(unsigned ch, Cycle now,
                                         QueueChoice choice) const
{
    const ChannelState &cs = perChan[ch];
    const trng::RngEngine &eng = *engines[ch];
    const MemoryBackend &chan = *chans[ch];
    const unsigned occ = occupancy(cs);
    const bool want_demand =
        !rngJobs.empty() && choice == QueueChoice::Rng;
    const bool fill_capable =
        cfg.fill == FillMode::Engine && buf && !buf->full();

    if (eng.idle()) {
        if (cs.lowUtilSession || cs.demandSession)
            return now; // The session flags are cleared this cycle.
        if (chan.refreshBusy(now))
            return kNoEvent; // Blocked; refresh edges are channel events.
        if (want_demand)
            return now; // A demand session starts this cycle.
        if (!fill_capable || fillSessionActive())
            return kNoEvent;
        if (occ == 0 && cs.idleActive) {
            if (!cs.predictionCached)
                return now; // predictLong() scores a prediction.
            return cs.predictedLong ? now : kNoEvent;
        }
        // Low-utilization territory: the trigger mutates its rate
        // limiter whenever it fires; its earliest firing cycle is the
        // rate limiter itself (every other condition is static over a
        // quiescent span).
        if (cfg.lowUtilThreshold > 0 && occ < cfg.lowUtilThreshold) {
            if (buf->levelBits() >= 0.5 * buf->capacityBits())
                return kNoEvent;
            return std::max(now, cs.lowUtilNextAllowed);
        }
        return kNoEvent;
    }

    const bool continue_fill = fill_capable && occ == 0;
    if (want_demand || continue_fill) {
        if (!eng.windNone())
            return now; // cancelStop() clears the pending wind.
        if (eng.parked())
            return now; // resume()/requestStop() this cycle.
        if (want_demand && !cs.demandSession)
            return now;
        return kNoEvent;
    }
    if (cfg.enableFillAbort && eng.switchingIn() && !cs.lowUtilSession &&
        !cs.demandSession)
        return now; // abortSwitchIn() fires this cycle.
    if (cfg.rngAwareQueueing && cfg.enableParking && cs.demandSession &&
        occ == 0 && !chan.refreshBusy(now)) {
        // requestPark() is a no-op only when already requested.
        return eng.parkRequested() ? kNoEvent : now;
    }
    return eng.stopRequested() ? kNoEvent : now; // requestStop() likewise.
}

Cycle
MemoryController::nextIssueCycle(const RequestQueue &queue, unsigned ch,
                                 Cycle now) const
{
    // Work-conserving schedulers issue on the first cycle any request's
    // next command is legal; with nothing issuable before that, queue
    // and bank state are static and pick() stays kNoPick.
    const MemoryBackend &chan = *chans[ch];
    if (!batchMode) {
        Cycle earliest = kNoEvent;
        for (const Request &req : queue.all()) {
            const dram::DramCmd cmd = nextCommandFor(req, chan);
            earliest = std::min(
                earliest, chan.earliestIssueCycle(cmd, req.coord.bank));
            if (earliest <= now)
                return now;
        }
        return earliest;
    }

    // Batch mode memoizes the *full* queue minimum, keyed on the
    // backend's fence version and the queue's membership version. Only
    // completed scans are cached: when some entry's fence has already
    // passed the scan early-exits with `now` uncached (a partial prefix
    // minimum would not be reusable at a later `now`), which keeps the
    // issuable-right-now case exactly as cheap as the uncached path.
    // The cache pays off in blocked phases, where the old code rescanned
    // the whole queue on every probe.
    IssueHorizon &hz =
        horizonCache[ch][&queue == perChan[ch].writeQ.get() ? 1 : 0];
    const std::uint64_t tv = chan.timingVersion();
    if (hz.timingV == tv && hz.queueV == queue.version())
        return std::max(hz.earliest, now);
    Cycle earliest = kNoEvent;
    for (const Request &req : queue.all()) {
        const dram::DramCmd cmd = nextCommandFor(req, chan);
        earliest = std::min(earliest,
                            chan.earliestIssueCycle(cmd, req.coord.bank));
        if (earliest <= now)
            return now;
    }
    hz.earliest = earliest;
    hz.timingV = tv;
    hz.queueV = queue.version();
    return earliest;
}

Cycle
MemoryController::serveChannelEventCycle(unsigned ch, Cycle now,
                                         QueueChoice choice) const
{
    const ChannelState &cs = perChan[ch];
    const MemoryBackend &chan = *chans[ch];

    // serveChannel() early-outs before touching any state; the engine,
    // refresh, and RNG-fence edges are tracked as their own events.
    if (engines[ch]->active() || chan.refreshBusy(now) ||
        chan.rngBusy(now)) {
        return kNoEvent;
    }
    if (chan.poweredDown()) {
        return cs.readQ->empty() && cs.writeQ->empty() ? kNoEvent
                                                       : now; // Wakes.
    }
    // Partially powered-down with queued work: serveChannel() issues a
    // wake this cycle (never taken with one rank).
    if (chan.anyRankPoweredDown() &&
        !(cs.readQ->empty() && cs.writeQ->empty()))
        return now;

    const bool reads_waiting = !cs.readQ->empty();
    if (!cs.writeDraining &&
        (cs.writeQ->size() >= cfg.writeDrainHigh ||
         (!reads_waiting && !cs.writeQ->empty())))
        return now; // Write drain starts this cycle.
    if (cs.writeDraining &&
        (cs.writeQ->empty() ||
         (cs.writeQ->size() <= cfg.writeDrainLow && reads_waiting)))
        return now; // Write drain stops this cycle.
    if (cs.writeDraining)
        return nextIssueCycle(*cs.writeQ, ch, now);
    if (!reads_waiting)
        return kNoEvent;
    // Reads wait while the RNG queue owns the channel.
    if (!rngJobs.empty() && choice == QueueChoice::Rng)
        return kNoEvent;
    return nextIssueCycle(*cs.readQ, ch, now);
}

Cycle
MemoryController::greedyNextEventCycle(Cycle now) const
{
    Cycle ev = kNoEvent;
    bool selected = false;
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        const ChannelState &cs = perChan[ch];
        const bool eligible = occupancy(cs) == 0 && engines[ch]->idle() &&
                              !chans[ch]->refreshBusy(now);
        if (!eligible) {
            if (cs.greedyIdleCredit != 0)
                return now; // The credit resets this cycle.
        } else if (!selected) {
            selected = true;
            if (!buf->full()) {
                // Credit at the tick of cycle T is credit + (T - now) + 1;
                // a deposit fires when it reaches periodThreshold plus a
                // multiple of the fill round latency.
                const Cycle thr = cfg.periodThreshold;
                const Cycle rl = fillMech.roundLatency;
                const Cycle c1 = cs.greedyIdleCredit + 1;
                Cycle v = thr;
                if (c1 >= thr) {
                    const Cycle rem = (c1 - thr) % rl;
                    v = rem == 0 ? c1 : c1 + (rl - rem);
                }
                ev = std::min(ev, now + (v - c1));
            }
        }
        // Non-selected eligible channels keep their credit paused.
    }
    return ev;
}

void
MemoryController::collectProducers(Cycle now) const
{
    (void)now;
    producerScratch.clear();
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        const trng::RngEngine &eng = *engines[ch];
        // A generating engine with no pending stop/park (and, per the
        // stability checks, no management change coming) completes a
        // round every roundLatency cycles; a switching-in engine's
        // first round lands one switch phase later. A stopping engine
        // completes exactly one more round before switching out.
        const bool periodic =
            (eng.inRound() || eng.switchingIn()) && eng.windNone();
        const bool stopping = eng.inRound() && eng.stopRequested();
        if (!periodic && !stopping)
            continue;
        const trng::TrngMechanism &m = eng.mechanism();
        Producer p;
        p.period = m.roundLatency;
        p.bits = m.bitsPerRound;
        p.ch = ch;
        p.oneShot = stopping;
        const Cycle end = eng.phaseEndCycle();
        p.next = (eng.switchingIn() ? end + m.roundLatency : end) - 1;
        producerScratch.push_back(p);
    }
}

Cycle
MemoryController::productionEventCycle(Cycle now, Cycle bound) const
{
    (void)now;
    if (producerScratch.empty())
        return kNoEvent;

    // Memo hit: no unmodeled mutation happened (productionV), the
    // event has not fired yet, and every producer is the cached one
    // advanced an integral number of rounds along the modeled stream.
    // Rounds completing inside the span — whether replayed by
    // fastForward() or ticked normally — are exactly the rounds the
    // walk peeked, and routeBits() replicates the walk's arithmetic
    // bit for bit, so the predicted event survives them.
    const auto cacheValid = [&]() -> bool {
        if (prodCache.v != productionV + 1)
            return false;
        if (prodCache.event != kNoEvent && prodCache.event <= now)
            return false; // Fired (e.g. a buffer-full checkpoint).
        if (prodCache.producers.size() != producerScratch.size())
            return false;
        for (std::size_t i = 0; i < producerScratch.size(); ++i) {
            const Producer &c = prodCache.producers[i];
            const Producer &p = producerScratch[i];
            if (p.ch != c.ch || p.period != c.period ||
                p.bits != c.bits || p.oneShot != c.oneShot)
                return false;
            if (p.next == c.next)
                continue;
            // A one-shot (stopping) producer's single round either has
            // not fired (next unchanged) or ended the producer (size
            // mismatch above); any other drift is a restarted session.
            if (p.oneShot || p.next < c.next ||
                (p.next - c.next) % p.period != 0)
                return false;
        }
        return true;
    };
    if (cacheValid())
        return prodCache.event < bound ? prodCache.event : kNoEvent;
    // The walk below advances producerScratch in place; snapshot first.
    prodCache.producers = producerScratch;
    prodCache.v = productionV + 1;

    const Cycle event = [&]() -> Cycle {
        const bool jobs = !rngJobs.empty();
        // Front-job fill level, replicating routeBits's arithmetic.
        double collected = jobs ? rngJobs.front().bitsCollected : 0.0;
        // Without jobs, round bits deposit into the buffer; the deposit
        // that fills it flips fill_capable and is therefore an event.
        // The spare tracking here subtracts whole rounds (the buffer's
        // own partition arithmetic may differ in the last ulps), so
        // trigger one round early and let normal ticks handle the exact
        // crossing.
        double spare = 0.0;
        if (!jobs) {
            // Without a fault plane, bufferless production is pure
            // (staging absorbs everything); with one, rounds must still
            // be walked so a failing audit ends the span.
            if (!buf && !faultPlane)
                return kNoEvent;
            if (buf)
                spare = buf->capacityBits() - buf->levelBits();
        }

        if (faultPlane)
            faultPlane->beginPeek();
        for (unsigned step = 0; step < kMaxProductionSteps; ++step) {
            std::size_t best = producerScratch.size();
            for (std::size_t i = 0; i < producerScratch.size(); ++i) {
                if (best == producerScratch.size() ||
                    producerScratch[i].next < producerScratch[best].next)
                    best = i;
            }
            Producer &p = producerScratch[best];
            if (p.next == kNoEvent)
                return kNoEvent; // Every one-shot producer consumed.
            // A round whose audit fails delivers nothing and mutates
            // the health monitor — always a span-ending event. Peeked-
            // and-passed rounds are exactly what fastForward() later
            // commits.
            if (faultPlane && !faultPlane->peekRound(p.ch))
                return p.next;
            if (jobs) {
                const double need = 64.0 - collected;
                const double take = std::min(need, p.bits);
                if (collected + take >= 64.0)
                    return p.next; // The front job completes here.
                collected += take;
            } else if (buf) {
                if (2.0 * p.bits >= spare)
                    return p.next; // At/one round before buffer-full.
                spare -= p.bits;
            }
            p.next = p.oneShot ? kNoEvent : p.next + p.period;
        }
        // Too many rounds to prove quiescence further: checkpoint here
        // and re-derive (the skip up to this point is already large).
        Cycle checkpoint = kNoEvent;
        for (const Producer &p : producerScratch)
            checkpoint = std::min(checkpoint, p.next);
        return checkpoint;
    }();

    prodCache.event = event;
    return event < bound ? event : kNoEvent;
}

Cycle
MemoryController::nextEventCycle(Cycle now) const
{
    // Intra-queue scheduler housekeeping (BLISS clearing interval; a
    // custom scheduler without a nextEventCycle() override reports
    // per-cycle work and disables skipping).
    Cycle ev = readSched->nextEventCycle(now);
    if (ev <= now)
        return now;

    // Completion deliveries.
    for (const ChannelState &cs : perChan)
        if (!cs.inflightDone.empty())
            ev = std::min(ev, cs.inflightDone.front());
    if (!pendingBufferServeDone.empty())
        ev = std::min(ev, pendingBufferServeDone.front());
    if (ev <= now)
        return now;

    bool producing = false;
    bool regular_prio = false;
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        const trng::RngEngine &eng = *engines[ch];
        ev = std::min(ev, chans[ch]->nextEventCycle(now, eng.active()));
        QueueChoice choice;
        if (cfg.rngAwareQueueing) {
            // One queue scan yields the choice, the stall-limit flip
            // event, and the counter-direction flag together.
            const RngAwarePolicy::Arbitration arb =
                rngPolicy->arbitration(ch, *perChan[ch].readQ, rngJobs,
                                       now);
            choice = arb.choice;
            ev = std::min(ev, arb.flipAt);
            regular_prio = regular_prio || arb.regularPrioritized;
        } else {
            choice = peekChoice(ch);
        }
        ev = std::min(ev, manageEngineEventCycle(ch, now, choice));
        ev = std::min(ev, serveChannelEventCycle(ch, now, choice));
        if (ev <= now)
            return now;
        // Steadily-generating engines advance through whole rounds
        // inside a span, and a stopping engine through its final round
        // (their completions are batched; the switch-out end is the
        // bounding event). Any other engine phase boundary ends the
        // span.
        if ((eng.inRound() || eng.switchingIn()) && eng.windNone()) {
            producing = true;
        } else if (eng.inRound() && eng.stopRequested()) {
            producing = true;
            ev = std::min(ev, eng.phaseEndCycle() +
                                  eng.mechanism().switchOutLatency - 1);
        } else {
            ev = std::min(ev, eng.nextEventCycle(now));
        }
        if (ev <= now)
            return now;
    }

    if (producing) {
        collectProducers(now);
        if (regular_prio) {
            // Every round completion resets the RNG stall counter;
            // while regular traffic is prioritized that counter is
            // live, so the span must stop at the first completion.
            for (const Producer &p : producerScratch)
                ev = std::min(ev, p.next);
        }
        ev = std::min(ev, productionEventCycle(now, ev));
        if (ev <= now)
            return now;
    }

    if (cfg.fill == FillMode::GreedyOracle && buf)
        ev = std::min(ev, greedyNextEventCycle(now));

    return ev;
}

void
MemoryController::fastForward(Cycle from, Cycle to)
{
    assert(to > from);
    const Cycle span = to - from;
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        // Residency sampling happens before the engine tick each cycle,
        // so batch it first (the engine extends the fences afterwards).
        chans[ch]->fastForwardState(from, to);
        engines[ch]->fastForward(from, to);
        if (cfg.rngAwareQueueing) {
            rngPolicy->fastForward(ch, *perChan[ch].readQ, rngJobs, span);
        }
    }

    // Replay the span's engine phase completions in exact per-cycle
    // order (time, then channel index — the tick loop's order), routing
    // each completed round's bits through the normal path. The horizon
    // guarantees none of these completes the front job or fills the
    // buffer.
    collectProducers(from);
    if (!producerScratch.empty()) {
        // Switching-in engines also complete their (bit-less) switch
        // phase inside the span; start their stream at that transition.
        for (Producer &p : producerScratch) {
            if (engines[p.ch]->switchingIn())
                p.next = engines[p.ch]->phaseEndCycle() - 1;
        }
        for (;;) {
            std::size_t best = producerScratch.size();
            for (std::size_t i = 0; i < producerScratch.size(); ++i) {
                if (producerScratch[i].next < to &&
                    (best == producerScratch.size() ||
                     producerScratch[i].next < producerScratch[best].next))
                    best = i;
            }
            if (best == producerScratch.size())
                break;
            Producer &p = producerScratch[best];
            trng::RngEngine &eng = *engines[p.ch];
            const bool round_end = eng.inRound();
            if (p.oneShot)
                eng.fastForwardFinalRound();
            else
                eng.fastForwardPhases(1);
            if (round_end) {
                // The horizon only spans peeked-and-passed rounds, so
                // the commit mirrors the tick path's pass branch.
                if (faultPlane)
                    faultPlane->commitRound(p.ch);
#ifndef NDEBUG
                const std::size_t jobs_before = rngJobs.size();
#endif
                routeBits(p.bits, p.next);
                assert(rngJobs.size() == jobs_before &&
                       "fast-forwarded round must not complete a job");
                if (rngPolicy)
                    rngPolicy->noteServed(p.ch, QueueChoice::Rng);
            }
            p.next = p.oneShot ? kNoEvent : p.next + p.period;
        }
    }

    if (cfg.fill == FillMode::GreedyOracle && buf) {
        for (unsigned ch = 0; ch < chans.size(); ++ch) {
            ChannelState &cs = perChan[ch];
            const bool eligible = occupancy(cs) == 0 &&
                                  engines[ch]->idle() &&
                                  !chans[ch]->refreshBusy(from);
            if (eligible) {
                // Only the selected (first eligible) channel accrues.
                cs.greedyIdleCredit += span;
                break;
            }
        }
    }
}

std::optional<strange::PredictorStats>
MemoryController::predictorStats() const
{
    strange::PredictorStats agg;
    bool any = false;
    for (const ChannelState &cs : perChan) {
        if (!cs.predictor)
            continue;
        any = true;
        const strange::PredictorStats &s = cs.predictor->stats();
        agg.predictions += s.predictions;
        agg.correct += s.correct;
        agg.falsePositives += s.falsePositives;
        agg.falseNegatives += s.falseNegatives;
    }
    if (!any)
        return std::nullopt;
    return agg;
}

Cycle
MemoryController::rngOccupiedCycles() const
{
    Cycle total = 0;
    for (const auto &eng : engines)
        total += eng->totalOccupiedCycles();
    return total;
}

bool
MemoryController::hasWorkForPort(CoreId first) const
{
    for (const RngJob &j : rngJobs)
        if (j.core >= first)
            return true;
    for (const RngJob &j : pendingBufferServes)
        if (j.core >= first)
            return true;
    for (const ChannelState &cs : perChan) {
        for (const Request &r : cs.inflightReads)
            if (r.core >= first)
                return true;
        for (const Request &r : cs.readQ->all())
            if (r.core >= first)
                return true;
        for (const Request &r : cs.writeQ->all())
            if (r.core >= first)
                return true;
    }
    return false;
}

bool
MemoryController::busy() const
{
    if (!rngJobs.empty() || !pendingBufferServes.empty())
        return true;
    for (const ChannelState &cs : perChan) {
        if (!cs.readQ->empty() || !cs.writeQ->empty() ||
            !cs.inflightReads.empty()) {
            return true;
        }
    }
    for (const auto &eng : engines)
        if (eng->active())
            return true;
    return false;
}

} // namespace dstrange::mem
