#include "mem/memory_controller.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "mem/scheduler_registry.h"
#include "strange/predictor_registry.h"

namespace dstrange::mem {

FillMode
fillModeFromName(const std::string &name)
{
    if (name == "none")
        return FillMode::None;
    if (name == "greedy-oracle")
        return FillMode::GreedyOracle;
    if (name == "engine")
        return FillMode::Engine;
    throw std::out_of_range(
        "unknown fill mode '" + name +
        "' (known: none, greedy-oracle, engine)");
}

MemoryController::MemoryController(const McConfig &config,
                                   const dram::DramTimings &timings,
                                   const dram::DramGeometry &geometry,
                                   const trng::TrngMechanism &mechanism,
                                   unsigned num_cores)
    : cfg(config), mapper(geometry), mech(mechanism),
      fillMech(config.fillMechanism.value_or(mechanism)),
      numCores(num_cores),
      writeSched(geometry.channels, geometry.banksPerRank, /*cap=*/0)
{
    assert(timingsAreConsistent(timings));

    for (unsigned ch = 0; ch < geometry.channels; ++ch) {
        chans.push_back(
            std::make_unique<dram::DramChannel>(timings, geometry));
        chans.back()->setPowerDownPolicy(cfg.powerDownThreshold);
        engines.push_back(std::make_unique<trng::RngEngine>(
            mech, fillMech, *chans.back()));
    }

    perChan.resize(geometry.channels);
    for (unsigned ch = 0; ch < geometry.channels; ++ch) {
        ChannelState &cs = perChan[ch];
        cs.readQ = std::make_unique<RequestQueue>(cfg.readQueueCap);
        cs.writeQ = std::make_unique<RequestQueue>(cfg.writeQueueCap);
        if (cfg.fill == FillMode::Engine) {
            strange::PredictorContext pctx;
            pctx.channel = ch;
            pctx.tableEntries = cfg.predictorEntries;
            pctx.periodThreshold = cfg.periodThreshold;
            pctx.rlConfig = cfg.rlConfig;
            cs.predictor = strange::PredictorRegistry::instance().make(
                cfg.predictor, pctx);
        }
        // Channels start empty, i.e. idle from cycle 0; the first fill
        // prediction is made lazily by manageEngine().
        cs.idleActive = true;
    }

    const SchedulerContext sctx{geometry.channels, geometry.banksPerRank,
                                num_cores, cfg};
    readSched = SchedulerRegistry::instance().make(cfg.scheduler, sctx);

    if (cfg.rngAwareQueueing) {
        RngAwarePolicy::Config pc;
        pc.stallLimit = cfg.stallLimit;
        rngPolicy = std::make_unique<RngAwarePolicy>(geometry.channels,
                                                     num_cores, pc);
    }

    if (cfg.bufferEntries > 0) {
        buf = std::make_unique<strange::BufferSet>(cfg.bufferEntries,
                                                   cfg.bufferPartitions);
    }
}

void
MemoryController::setCompletionCallback(CompletionCallback cb)
{
    onComplete = std::move(cb);
}

void
MemoryController::setPriority(CoreId core, int priority)
{
    if (rngPolicy)
        rngPolicy->setPriority(core, priority);
}

unsigned
MemoryController::occupancy(const ChannelState &cs) const
{
    return static_cast<unsigned>(cs.readQ->size() + cs.writeQ->size());
}

bool
MemoryController::enqueue(Request req, Cycle now)
{
    req.arrival = now;

    if (req.type == ReqType::Rng) {
        if (rngPolicy)
            rngPolicy->markRngApp(req.core);
        if (buf && buf->canServe64(req.core)) {
            buf->serve64(req.core);
            statistics.rngRequests++;
            statistics.rngServedFromBuffer++;
            statistics.sumRngLatency += cfg.bufferServeLatency;
            RngJob job{req.core, now, nextSeq++, req.token, 64.0};
            pendingBufferServes.push_back(job);
            pendingBufferServeDone.push_back(now + cfg.bufferServeLatency);
            return true;
        }
        if (stagingBits >= 64.0) {
            // Leftover bits of an earlier demand round cover the request.
            stagingBits -= 64.0;
            statistics.rngRequests++;
            statistics.rngServedFromStaging++;
            statistics.sumRngLatency += cfg.bufferServeLatency;
            RngJob job{req.core, now, nextSeq++, req.token, 64.0};
            pendingBufferServes.push_back(job);
            pendingBufferServeDone.push_back(now + cfg.bufferServeLatency);
            return true;
        }
        if (rngJobs.size() >= cfg.rngQueueCap)
            return false;
        statistics.rngRequests++;
        RngJob job{req.core, now, nextSeq++, req.token, 0.0};
        // Start the job with whatever partial bits are staged.
        job.bitsCollected = stagingBits;
        stagingBits = 0.0;
        rngJobs.push_back(job);
        return true;
    }

    req.coord = mapper.decode(req.addr);
    ChannelState &cs = perChan[req.coord.channel];
    RequestQueue &q =
        req.type == ReqType::Write ? *cs.writeQ : *cs.readQ;
    if (q.full())
        return false;
    req.seq = nextSeq++;
    q.push(req);
    if (req.type == ReqType::Read)
        statistics.readRequests++;
    else
        statistics.writeRequests++;

    // The arrival ends any idle/quiet period; the predictor trains with
    // the *previous* last-accessed address, then the address updates.
    updateIdleState(req.coord.channel, now);
    cs.lastAddr = req.addr;
    return true;
}

void
MemoryController::updateIdleState(unsigned ch, Cycle now)
{
    ChannelState &cs = perChan[ch];
    const unsigned occ = occupancy(cs);

    const bool idle_now = occ == 0;
    if (idle_now && !cs.idleActive) {
        cs.idleActive = true;
        cs.idleStart = now;
        cs.predictionCached = false;
        cs.predictedLong = false;
    } else if (!idle_now && cs.idleActive) {
        // The period ends at the first arrival: record its length for
        // the Fig. 5/18 distributions and train the predictor with the
        // previous last-accessed address (Section 5.1.2).
        cs.idleActive = false;
        const Cycle len = now - cs.idleStart;
        if (len > 0 && cs.idleLengths.size() < kMaxIdleSamples)
            cs.idleLengths.push_back(static_cast<std::uint32_t>(len));
        if (cs.predictor)
            cs.predictor->periodEnded(cs.lastAddr, len);
    }

}

void
MemoryController::routeBits(double bits, Cycle now)
{
    while (bits > 0.0 && !rngJobs.empty()) {
        RngJob &job = rngJobs.front();
        const double need = 64.0 - job.bitsCollected;
        const double take = std::min(need, bits);
        job.bitsCollected += take;
        bits -= take;
        if (job.done()) {
            statistics.rngJobsCompleted++;
            statistics.sumRngLatency += now - job.arrival;
            if (onComplete)
                onComplete(job.core, job.token, ReqType::Rng);
            rngJobs.pop_front();
        }
    }
    if (bits > 0.0 && buf)
        bits -= buf->deposit(bits);
    if (bits > 0.0) {
        stagingBits = std::min(stagingBits + bits,
                               std::max(mech.bitsPerRound,
                                        fillMech.bitsPerRound));
    }
}

bool
MemoryController::fillSessionActive() const
{
    if (cfg.fillChannelLimit == 0)
        return false; // Unlimited concurrent fill channels.
    unsigned active = 0;
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        if (engines[ch]->active() && !engines[ch]->parked() &&
            !perChan[ch].demandSession) {
            if (++active >= cfg.fillChannelLimit)
                return true;
        }
    }
    return false;
}

void
MemoryController::manageEngine(unsigned ch, Cycle now)
{
    trng::RngEngine &eng = *engines[ch];
    ChannelState &cs = perChan[ch];
    dram::DramChannel &chan = *chans[ch];

    const unsigned occ = occupancy(cs);
    const bool want_demand =
        !rngJobs.empty() && choiceNow[ch] == QueueChoice::Rng;
    const bool fill_capable =
        cfg.fill == FillMode::Engine && buf && !buf->full();

    if (eng.idle()) {
        cs.lowUtilSession = false;
        cs.demandSession = false;
        if (chan.refreshBusy(now))
            return;
        if (want_demand) {
            eng.start(now, trng::RngEngine::SessionKind::Demand);
            cs.demandSession = true;
            return;
        }
        if (!fill_capable || fillSessionActive())
            return; // Fill uses one selected channel at a time (5.1.1).
        if (occ == 0 && cs.idleActive) {
            // Predict once per idle period; sessions may restart within
            // the same period while the prediction holds.
            if (!cs.predictionCached) {
                cs.predictedLong =
                    cs.predictor ? cs.predictor->predictLong(cs.lastAddr)
                                 : true; // Simple buffering (5.1.1).
                cs.predictionCached = true;
            }
            if (cs.predictedLong)
                eng.start(now, trng::RngEngine::SessionKind::Fill);
        } else if (cfg.lowUtilThreshold > 0 &&
                   occ < cfg.lowUtilThreshold &&
                   now >= cs.lowUtilNextAllowed &&
                   buf->levelBits() < 0.5 * buf->capacityBits()) {
            // Low-utilization extension: short generation bursts while
            // the queue stays below the threshold and the buffer is
            // running low, gated by the trained predictor and
            // rate-limited so the few queued requests are stalled only
            // briefly between bursts (Section 5.1.2: "the predictor
            // stalls only a small number of requests").
            cs.lowUtilNextAllowed = now + 6 * cfg.periodThreshold;
            const bool fill_now =
                cs.predictor ? cs.predictor->peekLong(cs.lastAddr) : false;
            if (fill_now) {
                eng.start(now, trng::RngEngine::SessionKind::Fill);
                cs.lowUtilSession = true;
            }
        }
        return;
    }

    // Engine active: keep generating for pending demand, or keep filling
    // while the channel is strictly idle; otherwise wind down after the
    // current round (rounds cannot abort mid-flight because non-standard
    // timing parameters are in effect). Refinements:
    //  - A fill session still swapping timing parameters when a request
    //    arrives aborts outright — the mispredicted session yields
    //    nothing (low-utilization sessions start with requests queued,
    //    so they are exempt and commit to one round).
    //  - A demand session with no regular work waiting parks in RNG mode
    //    so the RNG application's next request (typically a handful of
    //    cycles away) resumes generation without another switch-in.
    const bool continue_fill = fill_capable && occ == 0;
    if (want_demand || continue_fill) {
        eng.cancelStop();
        if (eng.parked()) {
            // A hybrid engine parked in demand mode cannot fill without
            // re-switching mechanisms; wind it down instead.
            if (want_demand ||
                eng.canResumeAs(trng::RngEngine::SessionKind::Fill)) {
                eng.resume(now);
            } else {
                eng.requestStop();
            }
        }
        if (want_demand)
            cs.demandSession = true;
    } else if (cfg.enableFillAbort && eng.switchingIn() &&
               !cs.lowUtilSession && !cs.demandSession) {
        eng.abortSwitchIn(now);
    } else if (cfg.rngAwareQueueing && cfg.enableParking &&
               cs.demandSession && occ == 0 && !chan.refreshBusy(now)) {
        // Only the RNG-aware designs batch: they keep the channel in RNG
        // mode awaiting the next request burst (Section 2: interleaving
        // RNG and regular requests costs a timing-parameter swap each
        // way). The RNG-oblivious baseline switches back immediately.
        eng.requestPark();
    } else {
        eng.requestStop();
    }
}

void
MemoryController::serveChannel(unsigned ch, Cycle now)
{
    ChannelState &cs = perChan[ch];
    dram::DramChannel &chan = *chans[ch];

    if (engines[ch]->active() || chan.refreshBusy(now) ||
        chan.rngBusy(now)) {
        return;
    }

    // A powered-down rank must wake before serving queued work.
    if (chan.poweredDown()) {
        if (!cs.readQ->empty() || !cs.writeQ->empty())
            chan.requestWake(now);
        return;
    }

    // Write-drain policy: drain on the high watermark or opportunistically
    // when no reads wait; stop once the low watermark is reached and reads
    // are waiting again.
    const bool reads_waiting = !cs.readQ->empty();
    if (!cs.writeDraining &&
        (cs.writeQ->size() >= cfg.writeDrainHigh ||
         (!reads_waiting && !cs.writeQ->empty()))) {
        cs.writeDraining = true;
    }
    if (cs.writeDraining &&
        (cs.writeQ->empty() ||
         (cs.writeQ->size() <= cfg.writeDrainLow && reads_waiting))) {
        cs.writeDraining = false;
    }

    RequestQueue *queue = nullptr;
    Scheduler *sched = nullptr;
    if (cs.writeDraining) {
        queue = cs.writeQ.get();
        sched = &writeSched;
    } else {
        if (!reads_waiting)
            return;
        // When the RNG queue is chosen for this channel, regular reads
        // wait; the engine is being started by manageEngine(). In the
        // RNG-oblivious configuration any pending RNG job stalls all
        // regular traffic (Section 3 baseline).
        if (!rngJobs.empty() && choiceNow[ch] == QueueChoice::Rng)
            return;
        queue = cs.readQ.get();
        sched = readSched.get();
    }

    const SchedContext ctx{*queue, chan, ch, now};
    const int pick = sched->pick(ctx);
    if (pick < 0)
        return;

    Request &req = queue->at(static_cast<std::size_t>(pick));
    const dram::DramCmd cmd = nextCommandFor(req, chan);
    const Cycle done = chan.issue(
        cmd, req.coord.bank, now, static_cast<std::int64_t>(req.coord.row));

    if (cmd == dram::DramCmd::Rd) {
        statistics.readsCompleted++;
        statistics.sumReadLatency += done - req.arrival;
        cs.inflightReads.push_back(req);
        cs.inflightDone.push_back(done);
        sched->onColumnIssued(req, ch);
        if (rngPolicy)
            rngPolicy->noteServed(ch, QueueChoice::Regular);
        queue->erase(static_cast<std::size_t>(pick));
        updateIdleState(ch, now);
    } else if (cmd == dram::DramCmd::Wr) {
        sched->onColumnIssued(req, ch);
        queue->erase(static_cast<std::size_t>(pick));
        updateIdleState(ch, now);
    }
    // ACT/PRE only advance bank state; the request stays queued.
}

void
MemoryController::tick(Cycle now)
{
    readSched->tick(now);

    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        chans[ch]->tickRefresh(now);
        chans[ch]->sampleState(now);
    }

    // 1. Deliver completed reads and buffer-served RNG requests.
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        ChannelState &cs = perChan[ch];
        while (!cs.inflightDone.empty() && cs.inflightDone.front() <= now) {
            const Request &req = cs.inflightReads.front();
            if (onComplete)
                onComplete(req.core, req.token, ReqType::Read);
            cs.inflightReads.pop_front();
            cs.inflightDone.pop_front();
        }
    }
    while (!pendingBufferServeDone.empty() &&
           pendingBufferServeDone.front() <= now) {
        const RngJob &job = pendingBufferServes.front();
        if (onComplete)
            onComplete(job.core, job.token, ReqType::Rng);
        pendingBufferServes.pop_front();
        pendingBufferServeDone.pop_front();
    }

    // 2. Advance RNG-mode engines; route any bits a finished round yields.
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        const double bits = engines[ch]->tick(now);
        if (bits > 0.0) {
            routeBits(bits, now);
            if (rngPolicy)
                rngPolicy->noteServed(ch, QueueChoice::Rng);
        }
    }

    // 3. Greedy-oracle fill: once a contiguous idle stretch reaches the
    //    Period Threshold, deposit one round's bits at zero cost, then
    //    one more round per round-latency of continued idleness. Like
    //    DR-STRaNGe's engine fill, the oracle uses one selected channel
    //    at a time (the lowest-numbered idle one).
    if (cfg.fill == FillMode::GreedyOracle && buf) {
        bool selected = false;
        for (unsigned ch = 0; ch < chans.size(); ++ch) {
            ChannelState &cs = perChan[ch];
            const bool eligible = occupancy(cs) == 0 &&
                                  engines[ch]->idle() &&
                                  !chans[ch]->refreshBusy(now);
            if (!eligible) {
                cs.greedyIdleCredit = 0;
            } else if (!selected) {
                selected = true;
                cs.greedyIdleCredit++;
                if (cs.greedyIdleCredit >= cfg.periodThreshold &&
                    (cs.greedyIdleCredit - cfg.periodThreshold) %
                            fillMech.roundLatency ==
                        0 &&
                    !buf->full()) {
                    buf->deposit(fillMech.bitsPerRound);
                }
            }
            // Other idle channels keep their accrued credit paused.
        }
    }

    // 4. Arbitrate queues, start/stop RNG mode, then issue regular DRAM
    //    commands.
    choiceNow.assign(chans.size(), QueueChoice::None);
    for (unsigned ch = 0; ch < chans.size(); ++ch) {
        if (!cfg.rngAwareQueueing) {
            // RNG-oblivious: pending RNG work preempts every channel.
            choiceNow[ch] = !rngJobs.empty() ? QueueChoice::Rng
                            : !perChan[ch].readQ->empty()
                                ? QueueChoice::Regular
                                : QueueChoice::None;
        } else {
            choiceNow[ch] =
                rngPolicy->choose(ch, *perChan[ch].readQ, rngJobs);
        }
    }
    for (unsigned ch = 0; ch < chans.size(); ++ch)
        manageEngine(ch, now);
    for (unsigned ch = 0; ch < chans.size(); ++ch)
        serveChannel(ch, now);
}

std::optional<strange::PredictorStats>
MemoryController::predictorStats() const
{
    strange::PredictorStats agg;
    bool any = false;
    for (const ChannelState &cs : perChan) {
        if (!cs.predictor)
            continue;
        any = true;
        const strange::PredictorStats &s = cs.predictor->stats();
        agg.predictions += s.predictions;
        agg.correct += s.correct;
        agg.falsePositives += s.falsePositives;
        agg.falseNegatives += s.falseNegatives;
    }
    if (!any)
        return std::nullopt;
    return agg;
}

Cycle
MemoryController::rngOccupiedCycles() const
{
    Cycle total = 0;
    for (const auto &eng : engines)
        total += eng->totalOccupiedCycles();
    return total;
}

bool
MemoryController::busy() const
{
    if (!rngJobs.empty() || !pendingBufferServes.empty())
        return true;
    for (const ChannelState &cs : perChan) {
        if (!cs.readQ->empty() || !cs.writeQ->empty() ||
            !cs.inflightReads.empty()) {
            return true;
        }
    }
    for (const auto &eng : engines)
        if (eng->active())
            return true;
    return false;
}

} // namespace dstrange::mem
