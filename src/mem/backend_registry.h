/**
 * @file
 * String-keyed factory registry for memory-timing backends. The memory
 * controller instantiates its per-channel mem::MemoryBackend through
 * this registry, so an alternative DRAM timing model (a cross-validation
 * stub, an external-simulator adapter) becomes available to every design
 * sweep, the CLI (`--set backend.kind=`), and the benches by registering
 * a factory — the controller code never names a concrete model.
 */

#ifndef DSTRANGE_MEM_BACKEND_REGISTRY_H
#define DSTRANGE_MEM_BACKEND_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "dram/address_mapper.h"
#include "dram/dram_timings.h"
#include "mem/memory_backend.h"

namespace dstrange::mem {

struct McConfig;

/** Everything a backend factory may need at construction time. */
struct BackendContext
{
    const dram::DramTimings &timings;
    const dram::DramGeometry &geometry;
    const McConfig &cfg; ///< Numeric tuning knobs (latencies, thresholds).
};

/** Factory producing one channel's timing backend. */
using BackendFactory =
    std::function<std::unique_ptr<MemoryBackend>(const BackendContext &)>;

/**
 * Process-global backend registry. Built-in backends are registered on
 * first access:
 *
 *   "ddr4"           the cycle-level dram::DramChannel (the default)
 *   "fixed-latency"  the analytical constant-latency cross-check model
 *
 * Thread-safe: lookups take a shared lock and add() an exclusive one,
 * so parallel sweeps (sim::SweepRunner) can instantiate backends while
 * user code registers new ones.
 */
class BackendRegistry
{
  public:
    static BackendRegistry &instance();

    /**
     * Register a factory under @p key.
     * @throws std::invalid_argument if @p key is empty or already taken.
     */
    void add(const std::string &key, BackendFactory factory);

    /**
     * Instantiate the backend registered under @p key.
     * @throws std::out_of_range if @p key is unknown (the message lists
     *         the registered keys).
     */
    std::unique_ptr<MemoryBackend> make(const std::string &key,
                                        const BackendContext &ctx) const;

    bool contains(const std::string &key) const;

    /** Registered keys in sorted order. */
    std::vector<std::string> keys() const;

  private:
    BackendRegistry();

    mutable std::shared_mutex mu;
    std::map<std::string, BackendFactory> factories;
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_BACKEND_REGISTRY_H
