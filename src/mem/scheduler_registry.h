/**
 * @file
 * String-keyed factory registry for intra-queue memory schedulers. The
 * memory controller instantiates its scheduler through this registry, so
 * a new scheduling policy becomes available to every design sweep, the
 * CLI, and the benches by registering a factory — no switch statement to
 * extend, and registration can happen from user code outside src/mem
 * (see examples/scheduler_explorer.cpp).
 */

#ifndef DSTRANGE_MEM_SCHEDULER_REGISTRY_H
#define DSTRANGE_MEM_SCHEDULER_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "mem/scheduler.h"

namespace dstrange::mem {

struct McConfig;

/** Everything a scheduler factory may need at construction time. */
struct SchedulerContext
{
    unsigned channels = 0;
    unsigned banksPerChannel = 0;
    unsigned cores = 0;
    const McConfig &cfg; ///< Numeric tuning knobs (caps, thresholds).
};

/** Factory producing a scheduler for one memory controller instance. */
using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(const SchedulerContext &)>;

/**
 * Process-global scheduler registry. Built-in policies are registered on
 * first access:
 *
 *   "fr-fcfs"      classic FR-FCFS (row hits first, then oldest)
 *   "fr-fcfs-cap"  FR-FCFS with the paper's 16-column streak cap
 *   "bliss"        the BLISS blacklisting scheduler
 *
 * Thread-safe: lookups take a shared lock and add() an exclusive one,
 * so parallel sweeps (sim::SweepRunner) can instantiate schedulers
 * while user code registers new ones.
 */
class SchedulerRegistry
{
  public:
    static SchedulerRegistry &instance();

    /**
     * Register a factory under @p key.
     * @throws std::invalid_argument if @p key is empty or already taken.
     */
    void add(const std::string &key, SchedulerFactory factory);

    /**
     * Instantiate the scheduler registered under @p key.
     * @throws std::out_of_range if @p key is unknown (the message lists
     *         the registered keys).
     */
    std::unique_ptr<Scheduler> make(const std::string &key,
                                    const SchedulerContext &ctx) const;

    bool contains(const std::string &key) const;

    /** Registered keys in sorted order. */
    std::vector<std::string> keys() const;

  private:
    SchedulerRegistry();

    mutable std::shared_mutex mu;
    std::map<std::string, SchedulerFactory> factories;
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_SCHEDULER_REGISTRY_H
