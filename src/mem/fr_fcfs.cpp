#include "mem/fr_fcfs.h"

#include <cassert>

namespace dstrange::mem {

FrFcfsScheduler::FrFcfsScheduler(unsigned channels,
                                 unsigned banks_per_channel,
                                 unsigned column_cap)
    : banksPerChannel(banks_per_channel), columnCap(column_cap),
      streaks(static_cast<std::size_t>(channels) * banks_per_channel)
{
}

bool
FrFcfsScheduler::capBlocked(const SchedContext &ctx,
                            const Request &req) const
{
    if (columnCap == 0)
        return false;
    const BankStreak &bs =
        streaks[ctx.channelId * banksPerChannel + req.coord.bank];
    if (bs.row != static_cast<std::int64_t>(req.coord.row) ||
        bs.streak < columnCap) {
        return false;
    }
    // The cap only bites while a conflicting request to the same bank is
    // actually waiting.
    for (const Request &other : ctx.queue.all()) {
        if (other.coord.bank == req.coord.bank &&
            other.coord.row != req.coord.row) {
            return true;
        }
    }
    return false;
}

int
FrFcfsScheduler::pick(const SchedContext &ctx)
{
    const auto &entries = ctx.queue.all();

    // Pass 1: oldest issuable column command (row hit) not blocked by the
    // column cap.
    int best = kNoPick;
    std::uint64_t best_seq = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Request &req = entries[i];
        const dram::DramCmd cmd = nextCommandFor(req, ctx.channel);
        if (cmd != dram::DramCmd::Rd && cmd != dram::DramCmd::Wr)
            continue;
        if (!ctx.channel.canIssue(cmd, req.coord.bank, ctx.now))
            continue;
        if (capBlocked(ctx, req))
            continue;
        if (best == kNoPick || req.seq < best_seq) {
            best = static_cast<int>(i);
            best_seq = req.seq;
        }
    }
    if (best != kNoPick)
        return best;

    // Pass 2: oldest request whose next command (of any kind) can issue.
    // Cap-blocked column commands are skipped so the conflicting request
    // can make progress via its precharge.
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Request &req = entries[i];
        const dram::DramCmd cmd = nextCommandFor(req, ctx.channel);
        if (!ctx.channel.canIssue(cmd, req.coord.bank, ctx.now))
            continue;
        if ((cmd == dram::DramCmd::Rd || cmd == dram::DramCmd::Wr) &&
            capBlocked(ctx, req)) {
            continue;
        }
        if (best == kNoPick || req.seq < best_seq) {
            best = static_cast<int>(i);
            best_seq = req.seq;
        }
    }
    if (best != kNoPick)
        return best;

    // Pass 3: everything issuable is cap-blocked; serve the oldest anyway
    // rather than idling the channel (work conservation).
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Request &req = entries[i];
        const dram::DramCmd cmd = nextCommandFor(req, ctx.channel);
        if (!ctx.channel.canIssue(cmd, req.coord.bank, ctx.now))
            continue;
        if (best == kNoPick || req.seq < best_seq) {
            best = static_cast<int>(i);
            best_seq = req.seq;
        }
    }
    return best;
}

int
FrFcfsScheduler::forcedPick(const SchedContext &ctx) const
{
    const auto &entries = ctx.queue.all();
    if (entries.empty())
        return kNoPick;
    // entries is age-ordered and seq is assigned at enqueue, so the
    // front request is the global minimum-seq candidate: if it passes
    // every pass-1 filter it IS pass 1's winner.
    const Request &req = entries.front();
    const dram::DramCmd cmd = nextCommandFor(req, ctx.channel);
    if (cmd != dram::DramCmd::Rd && cmd != dram::DramCmd::Wr)
        return kUnknownPick;
    if (!ctx.channel.canIssue(cmd, req.coord.bank, ctx.now))
        return kUnknownPick;
    if (capBlocked(ctx, req))
        return kUnknownPick;
    return 0;
}

void
FrFcfsScheduler::onColumnIssued(const Request &req, unsigned channel_id)
{
    BankStreak &bs = streaks[channel_id * banksPerChannel + req.coord.bank];
    if (bs.row == static_cast<std::int64_t>(req.coord.row)) {
        bs.streak++;
    } else {
        bs.row = static_cast<std::int64_t>(req.coord.row);
        bs.streak = 1;
    }
}

} // namespace dstrange::mem
