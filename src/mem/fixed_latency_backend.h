/**
 * @file
 * Analytical constant-latency memory backend — the cross-validation
 * stub behind the `"fixed-latency"` mem::BackendRegistry key. It keeps
 * the protocol-visible state the controller relies on (open rows, the
 * one-command-per-cycle bus, RNG-mode occupancy) but replaces the JEDEC
 * timing fences with three numbers: a read latency, a write latency,
 * and a minimum column-to-column gap. Comparing a design's metrics
 * under "ddr4" vs "fixed-latency" separates effects of the detailed
 * timing model from effects of the scheduling policy under study.
 */

#ifndef DSTRANGE_MEM_FIXED_LATENCY_BACKEND_H
#define DSTRANGE_MEM_FIXED_LATENCY_BACKEND_H

#include <vector>

#include "dram/address_mapper.h"
#include "mem/memory_backend.h"

namespace dstrange::mem {

/**
 * One channel under the analytical model. Rows still open and close
 * (ACT/PRE are real commands so row-hit-aware schedulers behave
 * sensibly), but every command is legal one cycle after the previous
 * one, column commands additionally respect the configured gap, and
 * RD/WR data completes a fixed latency after issue. There is no
 * refresh, no power-down, and no cross-rank turnaround.
 */
class FixedLatencyBackend final : public MemoryBackend
{
  public:
    FixedLatencyBackend(const dram::DramGeometry &geometry,
                        Cycle read_latency, Cycle write_latency,
                        Cycle column_gap);

    unsigned numBanks() const override
    {
        return static_cast<unsigned>(openRows.size());
    }

    unsigned numRanks() const override { return ranks; }

    unsigned rankOf(unsigned bankIdx) const override
    {
        return bankIdx / banksEach;
    }

    std::int64_t openRow(unsigned bankIdx) const override
    {
        return openRows[bankIdx];
    }

    bool canIssue(dram::DramCmd cmd, unsigned bankIdx,
                  Cycle now) const override;

    Cycle earliestIssueCycle(dram::DramCmd cmd,
                             unsigned bankIdx) const override;

    Cycle issue(dram::DramCmd cmd, unsigned bankIdx, Cycle now,
                std::int64_t row = dram::kNoOpenRow) override;

    void tickRefresh(Cycle now) override { (void)now; }

    bool refreshBusy(Cycle now) const override
    {
        (void)now;
        return false;
    }

    void occupyForRng(Cycle until) override;

    bool rngBusy(Cycle now) const override { return now < rngBusyUntil; }

    void noteRngRound() override { counters.rngRounds++; }

    void sampleState(Cycle now) override;

    Cycle nextEventCycle(Cycle now, bool engine_active) const override;

    void fastForwardState(Cycle from, Cycle to) override;

    const dram::ChannelEnergyCounters &energyCounters() const override
    {
        return counters;
    }

    unsigned openBankCount() const override { return nOpen; }

    /** No power model: the policy is accepted and ignored. */
    void setPowerDownPolicy(Cycle idle_threshold) override
    {
        (void)idle_threshold;
    }

    bool poweredDown() const override { return false; }

    bool anyRankPoweredDown() const override { return false; }

    void requestWake(Cycle now) override { (void)now; }

    void setCommandObserver(CommandObserver observer) override
    {
        onCommand = std::move(observer);
    }

    /** Bumped on issue() and occupyForRng(), the only fence movers. */
    std::uint64_t timingVersion() const override { return timingV; }

  private:
    /** Whether this cycle samples as active or precharged standby. */
    bool activeNow(Cycle now) const
    {
        return nOpen > 0 || rngBusy(now);
    }

    unsigned ranks;
    unsigned banksEach; ///< Banks per rank.
    Cycle readLatency;
    Cycle writeLatency;
    Cycle columnGap;

    std::vector<std::int64_t> openRows; ///< kNoOpenRow when closed.
    unsigned nOpen = 0;

    Cycle cmdBusFreeAt = 0; ///< One command per cycle, channel-wide.
    Cycle nextColAt = 0;    ///< Column-to-column gap fence.
    Cycle rngBusyUntil = 0;
    std::uint64_t timingV = 0; ///< See timingVersion().

    dram::ChannelEnergyCounters counters;
    CommandObserver onCommand;
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_FIXED_LATENCY_BACKEND_H
