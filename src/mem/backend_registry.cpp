#include "mem/backend_registry.h"

#include <mutex>
#include <stdexcept>

#include "common/registry_key.h"
#include "dram/dram_channel.h"
#include "mem/fixed_latency_backend.h"
#include "mem/memory_controller.h"

namespace dstrange::mem {

BackendRegistry::BackendRegistry()
{
    add("ddr4", [](const BackendContext &ctx) {
        return std::make_unique<dram::DramChannel>(ctx.timings,
                                                   ctx.geometry);
    });
    add("fixed-latency", [](const BackendContext &ctx) {
        return std::make_unique<FixedLatencyBackend>(
            ctx.geometry, ctx.cfg.backendReadLatency,
            ctx.cfg.backendWriteLatency, ctx.cfg.backendGap);
    });
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::add(const std::string &key, BackendFactory factory)
{
    validateRegistryKey("backend", key);
    if (!factory)
        throw std::invalid_argument("backend factory for '" + key +
                                    "' must not be empty");
    std::unique_lock<std::shared_mutex> lock(mu);
    if (!factories.emplace(key, std::move(factory)).second)
        throw std::invalid_argument("backend '" + key +
                                    "' is already registered");
}

std::unique_ptr<MemoryBackend>
BackendRegistry::make(const std::string &key, const BackendContext &ctx) const
{
    // Copy the factory out so user factories run lock-free (one that
    // registers another backend from inside would otherwise deadlock).
    BackendFactory factory;
    {
        std::shared_lock<std::shared_mutex> lock(mu);
        const auto it = factories.find(key);
        if (it == factories.end()) {
            std::string known;
            for (const auto &[k, f] : factories)
                known += (known.empty() ? "" : ", ") + k;
            throw std::out_of_range("unknown backend '" + key +
                                    "' (registered: " + known + ")");
        }
        factory = it->second;
    }
    return factory(ctx);
}

bool
BackendRegistry::contains(const std::string &key) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    return factories.count(key) != 0;
}

std::vector<std::string>
BackendRegistry::keys() const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    std::vector<std::string> out;
    for (const auto &[key, factory] : factories)
        out.push_back(key);
    return out;
}

} // namespace dstrange::mem
