#include "mem/request.h"

// Request types are header-only; this translation unit anchors the library.
