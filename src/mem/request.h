/**
 * @file
 * Memory request and RNG job types exchanged between cores and the
 * memory controller.
 */

#ifndef DSTRANGE_MEM_REQUEST_H
#define DSTRANGE_MEM_REQUEST_H

#include <cstdint>

#include "common/types.h"
#include "dram/address_mapper.h"

namespace dstrange::mem {

/** Kind of request a core can issue to the memory system. */
enum class ReqType : std::uint8_t
{
    Read,  ///< Cache-line read (LLC miss).
    Write, ///< Cache-line writeback (posted).
    Rng,   ///< 64-bit true random number request.
};

/** One cache-line memory request. */
struct Request
{
    ReqType type = ReqType::Read;
    Addr addr = 0;
    dram::DramCoord coord{};
    CoreId core = 0;
    Cycle arrival = 0;       ///< Bus cycle the request entered the MC.
    std::uint64_t seq = 0;   ///< Global arrival order (FCFS age).
    std::uint64_t token = 0; ///< Core-side identifier for completion.
};

/**
 * One pending 64-bit random number generation job. Jobs live in the RNG
 * request queue and accumulate bits produced by RNG-mode rounds on any
 * channel until 64 bits are gathered.
 */
struct RngJob
{
    CoreId core = 0;
    Cycle arrival = 0;
    std::uint64_t seq = 0;
    std::uint64_t token = 0;
    double bitsCollected = 0.0;

    bool done() const { return bitsCollected >= 64.0; }
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_REQUEST_H
