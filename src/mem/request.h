/**
 * @file
 * Memory request and RNG job types exchanged between cores and the
 * memory controller.
 */

#ifndef DSTRANGE_MEM_REQUEST_H
#define DSTRANGE_MEM_REQUEST_H

#include <cstdint>

#include "common/types.h"
#include "dram/address_mapper.h"

namespace dstrange::mem {

/** Kind of request a core can issue to the memory system. */
enum class ReqType : std::uint8_t
{
    Read,  ///< Cache-line read (LLC miss).
    Write, ///< Cache-line writeback (posted).
    Rng,   ///< 64-bit true random number request.
};

/**
 * How a request was ultimately served, tagged at the buffer/controller
 * boundary when the request enters (buffer/staging hits are decided at
 * enqueue) or completes (engine generation). Reads report Dram. The
 * service layer's per-request lifecycle tracker uses the tag to split
 * tail latency by serve path.
 */
enum class ServePath : std::uint8_t
{
    Dram,    ///< Ordinary DRAM read data burst.
    Buffer,  ///< RNG request hit the random-number buffer.
    Staging, ///< RNG request covered by staged leftover bits.
    Engine,  ///< RNG request generated on demand by the TRNG engine.
};

/** One cache-line memory request. */
struct Request
{
    ReqType type = ReqType::Read;
    Addr addr = 0;
    dram::DramCoord coord{};
    CoreId core = 0;
    Cycle arrival = 0;       ///< Bus cycle the request entered the MC.
    std::uint64_t seq = 0;   ///< Global arrival order (FCFS age).
    std::uint64_t token = 0; ///< Core-side identifier for completion.
};

/**
 * One pending 64-bit random number generation job. Jobs live in the RNG
 * request queue and accumulate bits produced by RNG-mode rounds on any
 * channel until 64 bits are gathered.
 */
struct RngJob
{
    CoreId core = 0;
    Cycle arrival = 0;
    std::uint64_t seq = 0;
    std::uint64_t token = 0;
    double bitsCollected = 0.0;
    /** Serve-path tag reported to the completion callback. */
    ServePath path = ServePath::Engine;

    bool done() const { return bitsCollected >= 64.0; }
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_REQUEST_H
