/**
 * @file
 * The BLISS (Blacklisting) memory scheduler [Subramanian et al., ICCD'14
 * / TPDS'16], one of the paper's comparison points. An application that
 * has Blacklisting-Threshold consecutive requests served is blacklisted;
 * the blacklist is cleared every Clearing-Interval cycles. Priority
 * order: non-blacklisted > row hit > older.
 */

#ifndef DSTRANGE_MEM_BLISS_H
#define DSTRANGE_MEM_BLISS_H

#include <algorithm>
#include <vector>

#include "mem/scheduler.h"

namespace dstrange::mem {

/** BLISS scheduling policy. */
class BlissScheduler : public Scheduler
{
  public:
    /**
     * @param channels channel count
     * @param cores application/core count
     * @param threshold consecutive-service blacklisting threshold
     *        (paper configuration: 4)
     * @param clearing_interval blacklist clearing period in bus cycles
     *        (paper configuration: 10000)
     */
    BlissScheduler(unsigned channels, unsigned cores, unsigned threshold,
                   Cycle clearing_interval);

    int pick(const SchedContext &ctx) override;

    /**
     * A single-entry queue leaves BLISS no ranking to do: the lone
     * request wins when issuable regardless of blacklist state. Any
     * larger queue needs the full priority comparison.
     */
    int
    forcedPick(const SchedContext &ctx) const override
    {
        if (ctx.queue.size() != 1)
            return kUnknownPick;
        const Request &req = ctx.queue.at(0);
        const dram::DramCmd cmd = nextCommandFor(req, ctx.channel);
        return ctx.channel.canIssue(cmd, req.coord.bank, ctx.now) ? 0
                                                                  : kNoPick;
    }

    void onColumnIssued(const Request &req, unsigned channel_id) override;
    void tick(Cycle now) override;

    /** tick() only acts when the clearing interval expires. */
    Cycle nextEventCycle(Cycle now) const override
    {
        return std::max(now, nextClearAt);
    }

    bool isBlacklisted(CoreId core) const { return blacklist[core]; }

  private:
    unsigned threshold;
    Cycle clearingInterval;
    Cycle nextClearAt;
    std::vector<bool> blacklist;

    struct Streak
    {
        CoreId core = 0;
        unsigned count = 0;
        bool valid = false;
    };
    std::vector<Streak> streaks; ///< Per channel.
};

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_BLISS_H
