/**
 * @file
 * Bounded per-channel request queue with age-ordered storage and the
 * next-DRAM-command classification the schedulers operate on.
 */

#ifndef DSTRANGE_MEM_REQUEST_QUEUE_H
#define DSTRANGE_MEM_REQUEST_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dram/bank.h"
#include "mem/memory_backend.h"
#include "mem/request.h"

namespace dstrange::mem {

/**
 * A bounded queue of requests awaiting their column command. Requests
 * are stored in arrival order; erasure is O(n) with n <= 32, which is
 * cheaper in practice than pointer-chasing structures.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity) : cap(capacity) {}

    bool full() const { return entries.size() >= cap; }
    bool empty() const { return entries.empty(); }
    std::size_t size() const { return entries.size(); }
    std::size_t capacity() const { return cap; }

    /** @retval false when the queue is full (caller must retry). */
    bool
    push(const Request &req)
    {
        if (full())
            return false;
        entries.push_back(req);
        ++ver;
        return true;
    }

    const Request &at(std::size_t i) const { return entries[i]; }
    Request &at(std::size_t i) { return entries[i]; }

    /** Remove the request at index @p i (its column command issued). */
    void
    erase(std::size_t i)
    {
        entries.erase(entries.begin() + i);
        ++ver;
    }

    const std::vector<Request> &all() const { return entries; }

    /**
     * Monotone counter bumped on every membership change; memoized
     * per-queue issue horizons key on (this, backend timingVersion).
     */
    std::uint64_t version() const { return ver; }

  private:
    std::size_t cap;
    std::vector<Request> entries;
    std::uint64_t ver = 0;
};

/**
 * The DRAM command a queued request needs next, given current bank state:
 * a row hit needs its column command, a row conflict needs PRE, and a
 * closed bank needs ACT.
 */
inline dram::DramCmd
nextCommandFor(const Request &req, const MemoryBackend &chan)
{
    const std::int64_t open_row = chan.openRow(req.coord.bank);
    if (open_row == dram::kNoOpenRow)
        return dram::DramCmd::Act;
    if (open_row == static_cast<std::int64_t>(req.coord.row))
        return req.type == ReqType::Write ? dram::DramCmd::Wr
                                          : dram::DramCmd::Rd;
    return dram::DramCmd::Pre;
}

/** true when the request's next command is its column command. */
inline bool
isRowHit(const Request &req, const MemoryBackend &chan)
{
    const dram::DramCmd cmd = nextCommandFor(req, chan);
    return cmd == dram::DramCmd::Rd || cmd == dram::DramCmd::Wr;
}

} // namespace dstrange::mem

#endif // DSTRANGE_MEM_REQUEST_QUEUE_H
