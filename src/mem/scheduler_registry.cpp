#include "mem/scheduler_registry.h"

#include <mutex>
#include <stdexcept>

#include "common/registry_key.h"
#include "mem/bliss.h"
#include "mem/fr_fcfs.h"
#include "mem/memory_controller.h"

namespace dstrange::mem {

SchedulerRegistry::SchedulerRegistry()
{
    add("fr-fcfs", [](const SchedulerContext &ctx) {
        return std::make_unique<FrFcfsScheduler>(
            ctx.channels, ctx.banksPerChannel, /*column_cap=*/0);
    });
    add("fr-fcfs-cap", [](const SchedulerContext &ctx) {
        return std::make_unique<FrFcfsScheduler>(
            ctx.channels, ctx.banksPerChannel, ctx.cfg.columnCap);
    });
    add("bliss", [](const SchedulerContext &ctx) {
        return std::make_unique<BlissScheduler>(
            ctx.channels, ctx.cores, ctx.cfg.blissThreshold,
            ctx.cfg.blissClearingInterval);
    });
}

SchedulerRegistry &
SchedulerRegistry::instance()
{
    static SchedulerRegistry registry;
    return registry;
}

void
SchedulerRegistry::add(const std::string &key, SchedulerFactory factory)
{
    validateRegistryKey("scheduler", key);
    if (!factory)
        throw std::invalid_argument("scheduler factory for '" + key +
                                    "' must not be empty");
    std::unique_lock<std::shared_mutex> lock(mu);
    if (!factories.emplace(key, std::move(factory)).second)
        throw std::invalid_argument("scheduler '" + key +
                                    "' is already registered");
}

std::unique_ptr<Scheduler>
SchedulerRegistry::make(const std::string &key,
                        const SchedulerContext &ctx) const
{
    // Copy the factory out so user factories run lock-free (one that
    // registers another policy from inside would otherwise deadlock).
    SchedulerFactory factory;
    {
        std::shared_lock<std::shared_mutex> lock(mu);
        const auto it = factories.find(key);
        if (it == factories.end()) {
            std::string known;
            for (const auto &[k, f] : factories)
                known += (known.empty() ? "" : ", ") + k;
            throw std::out_of_range("unknown scheduler '" + key +
                                    "' (registered: " + known + ")");
        }
        factory = it->second;
    }
    return factory(ctx);
}

bool
SchedulerRegistry::contains(const std::string &key) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    return factories.count(key) != 0;
}

std::vector<std::string>
SchedulerRegistry::keys() const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    std::vector<std::string> out;
    for (const auto &[key, factory] : factories)
        out.push_back(key);
    return out;
}

} // namespace dstrange::mem
