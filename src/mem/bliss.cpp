#include "mem/bliss.h"

namespace dstrange::mem {

BlissScheduler::BlissScheduler(unsigned channels, unsigned cores,
                               unsigned threshold, Cycle clearing_interval)
    : threshold(threshold), clearingInterval(clearing_interval),
      nextClearAt(clearing_interval), blacklist(cores, false),
      streaks(channels)
{
}

int
BlissScheduler::pick(const SchedContext &ctx)
{
    const auto &entries = ctx.queue.all();

    // Rank issuable requests by (blacklisted, !rowHit, age); lowest wins.
    int best = kNoPick;
    auto better = [&](const Request &a, const Request &b) {
        const bool bl_a = blacklist[a.core], bl_b = blacklist[b.core];
        if (bl_a != bl_b)
            return !bl_a;
        const bool hit_a = isRowHit(a, ctx.channel);
        const bool hit_b = isRowHit(b, ctx.channel);
        if (hit_a != hit_b)
            return hit_a;
        return a.seq < b.seq;
    };

    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Request &req = entries[i];
        const dram::DramCmd cmd = nextCommandFor(req, ctx.channel);
        if (!ctx.channel.canIssue(cmd, req.coord.bank, ctx.now))
            continue;
        if (best == kNoPick ||
            better(req, entries[static_cast<std::size_t>(best)])) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

void
BlissScheduler::onColumnIssued(const Request &req, unsigned channel_id)
{
    Streak &s = streaks[channel_id];
    if (s.valid && s.core == req.core) {
        if (++s.count >= threshold)
            blacklist[req.core] = true;
    } else {
        s.core = req.core;
        s.count = 1;
        s.valid = true;
    }
}

void
BlissScheduler::tick(Cycle now)
{
    if (now >= nextClearAt) {
        std::fill(blacklist.begin(), blacklist.end(), false);
        nextClearAt = now + clearingInterval;
    }
}

} // namespace dstrange::mem
