#include "mem/rng_aware.h"

#include <algorithm>
#include <cassert>

namespace dstrange::mem {

RngAwarePolicy::RngAwarePolicy(unsigned channels, unsigned cores,
                               const Config &config)
    : cfg(config), priorities(cores, 0), rngApp(cores, false),
      stalls(channels), pcache(channels)
{
}

void
RngAwarePolicy::setPriority(CoreId core, int priority)
{
    if (priorities[core] != priority) {
        priorities[core] = priority;
        ++stateV;
        // Priority changes reset the anti-starvation state (Section 5.2).
        for (auto &s : stalls)
            s = StallCounters{};
    }
}

RngAwarePolicy::Pressure
RngAwarePolicy::pressureCached(unsigned channel,
                               const RequestQueue &read_queue,
                               const std::deque<RngJob> &rng_jobs) const
{
    PressureCache &pc = pcache[channel];
    if (pc.queue == &read_queue && pc.queueV == read_queue.version() &&
        pc.stateV == stateV) {
        assert(pc.p == pressure(read_queue, rng_jobs) &&
               "stale pressure memo: a membership change was not "
               "reported via noteJobsChanged()");
        return pc.p;
    }
    pc.p = pressure(read_queue, rng_jobs);
    pc.queue = &read_queue;
    pc.queueV = read_queue.version();
    pc.stateV = stateV;
    return pc.p;
}

RngAwarePolicy::Pressure
RngAwarePolicy::pressure(const RequestQueue &read_queue,
                         const std::deque<RngJob> &rng_jobs) const
{
    if (rng_jobs.empty() || read_queue.empty())
        return Pressure::None;

    int prio_rng = priorities[rng_jobs.front().core];
    for (const RngJob &job : rng_jobs)
        prio_rng = std::max(prio_rng, priorities[job.core]);

    int prio_reg = priorities[read_queue.at(0).core];
    std::uint64_t oldest_reg_seq = read_queue.at(0).seq;
    CoreId oldest_reg_core = read_queue.at(0).core;
    for (std::size_t i = 0; i < read_queue.size(); ++i) {
        const Request &req = read_queue.at(i);
        prio_reg = std::max(prio_reg, priorities[req.core]);
        if (req.seq < oldest_reg_seq) {
            oldest_reg_seq = req.seq;
            oldest_reg_core = req.core;
        }
    }

    if (prio_reg > prio_rng) {
        // Non-RNG prioritized: RNG requests older than an RNG
        // application's blocked regular read drain unconditionally.
        if (rngApp[oldest_reg_core] &&
            oldest_reg_seq > rng_jobs.front().seq)
            return Pressure::None;
        return Pressure::OnRng;
    }
    // RNG prioritized or equal priorities: drain the RNG queue first
    // (Section 5.2.1), bounded by the stall limit.
    return Pressure::OnRegular;
}

QueueChoice
RngAwarePolicy::pureChoice(const RequestQueue &read_queue,
                           const std::deque<RngJob> &rng_jobs) const
{
    if (rng_jobs.empty() && read_queue.empty())
        return QueueChoice::None;
    if (rng_jobs.empty())
        return QueueChoice::Regular;
    // RNG pending and either no regular reads or the old-RNG-drain rule.
    return QueueChoice::Rng;
}

QueueChoice
RngAwarePolicy::choose(unsigned channel, const RequestQueue &read_queue,
                       const std::deque<RngJob> &rng_jobs)
{
    const Pressure p = pressureCached(channel, read_queue, rng_jobs);
    if (p == Pressure::None)
        return pureChoice(read_queue, rng_jobs);

    StallCounters &s = stalls[channel];
    Cycle &counter = p == Pressure::OnRegular ? s.regular : s.rng;
    if (counter >= cfg.stallLimit) {
        // The deprioritized queue's stall limit trips: serve it once.
        counter = 0;
        return p == Pressure::OnRegular ? QueueChoice::Regular
                                        : QueueChoice::Rng;
    }
    counter++;
    maxStall = std::max(maxStall, counter);
    return p == Pressure::OnRegular ? QueueChoice::Rng
                                    : QueueChoice::Regular;
}

RngAwarePolicy::Arbitration
RngAwarePolicy::arbitration(unsigned channel,
                            const RequestQueue &read_queue,
                            const std::deque<RngJob> &rng_jobs,
                            Cycle now) const
{
    Arbitration arb;
    const Pressure p = pressureCached(channel, read_queue, rng_jobs);
    if (p == Pressure::None) {
        arb.choice = pureChoice(read_queue, rng_jobs);
        return arb;
    }
    arb.regularPrioritized = p == Pressure::OnRng;
    const StallCounters &s = stalls[channel];
    const Cycle counter = p == Pressure::OnRegular ? s.regular : s.rng;
    if (counter >= cfg.stallLimit) {
        // The flip-and-reset happens on the very next choose() call.
        arb.flipAt = now;
        arb.choice = p == Pressure::OnRegular ? QueueChoice::Regular
                                              : QueueChoice::Rng;
    } else {
        arb.flipAt = now + (cfg.stallLimit - counter);
        arb.choice = p == Pressure::OnRegular ? QueueChoice::Rng
                                              : QueueChoice::Regular;
    }
    return arb;
}

QueueChoice
RngAwarePolicy::peek(unsigned channel, const RequestQueue &read_queue,
                     const std::deque<RngJob> &rng_jobs) const
{
    return arbitration(channel, read_queue, rng_jobs, 0).choice;
}

Cycle
RngAwarePolicy::nextEventCycle(unsigned channel,
                               const RequestQueue &read_queue,
                               const std::deque<RngJob> &rng_jobs,
                               Cycle now) const
{
    return arbitration(channel, read_queue, rng_jobs, now).flipAt;
}

void
RngAwarePolicy::fastForward(unsigned channel,
                            const RequestQueue &read_queue,
                            const std::deque<RngJob> &rng_jobs,
                            Cycle span)
{
    const Pressure p = pressureCached(channel, read_queue, rng_jobs);
    if (p == Pressure::None)
        return;
    StallCounters &s = stalls[channel];
    Cycle &counter = p == Pressure::OnRegular ? s.regular : s.rng;
    assert(counter + span <= cfg.stallLimit);
    counter += span;
    maxStall = std::max(maxStall, counter);
}

void
RngAwarePolicy::noteServed(unsigned channel, QueueChoice served)
{
    StallCounters &s = stalls[channel];
    if (served == QueueChoice::Regular)
        s.regular = 0;
    else if (served == QueueChoice::Rng)
        s.rng = 0;
}

} // namespace dstrange::mem
