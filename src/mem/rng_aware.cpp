#include "mem/rng_aware.h"

#include <algorithm>
#include <cassert>

namespace dstrange::mem {

RngAwarePolicy::RngAwarePolicy(unsigned channels, unsigned cores,
                               const Config &config)
    : cfg(config), priorities(cores, 0), rngApp(cores, false),
      stalls(channels)
{
}

void
RngAwarePolicy::setPriority(CoreId core, int priority)
{
    if (priorities[core] != priority) {
        priorities[core] = priority;
        // Priority changes reset the anti-starvation state (Section 5.2).
        for (auto &s : stalls)
            s = StallCounters{};
    }
}

QueueChoice
RngAwarePolicy::choose(unsigned channel, const RequestQueue &read_queue,
                       const std::deque<RngJob> &rng_jobs)
{
    const bool rng_pending = !rng_jobs.empty();
    const bool reg_pending = !read_queue.empty();
    if (!rng_pending && !reg_pending)
        return QueueChoice::None;
    if (!rng_pending)
        return QueueChoice::Regular;
    if (!reg_pending)
        return QueueChoice::Rng;

    int prio_rng = priorities[rng_jobs.front().core];
    for (const RngJob &job : rng_jobs)
        prio_rng = std::max(prio_rng, priorities[job.core]);

    int prio_reg = priorities[read_queue.at(0).core];
    std::uint64_t oldest_reg_seq = read_queue.at(0).seq;
    CoreId oldest_reg_core = read_queue.at(0).core;
    for (std::size_t i = 0; i < read_queue.size(); ++i) {
        const Request &req = read_queue.at(i);
        prio_reg = std::max(prio_reg, priorities[req.core]);
        if (req.seq < oldest_reg_seq) {
            oldest_reg_seq = req.seq;
            oldest_reg_core = req.core;
        }
    }
    const std::uint64_t oldest_rng_seq = rng_jobs.front().seq;

    StallCounters &s = stalls[channel];
    if (prio_rng > prio_reg) {
        // RNG prioritized: drain the RNG queue, bounded by the stall limit.
        if (s.regular >= cfg.stallLimit) {
            s.regular = 0;
            return QueueChoice::Regular;
        }
        s.regular++;
        maxStall = std::max(maxStall, s.regular);
        return QueueChoice::Rng;
    }
    if (prio_reg > prio_rng) {
        // Non-RNG prioritized: only drain RNG requests that are older than
        // an RNG application's blocked regular read.
        if (rngApp[oldest_reg_core] && oldest_reg_seq > oldest_rng_seq)
            return QueueChoice::Rng;
        if (s.rng >= cfg.stallLimit) {
            s.rng = 0;
            return QueueChoice::Rng;
        }
        s.rng++;
        maxStall = std::max(maxStall, s.rng);
        return QueueChoice::Regular;
    }

    // Equal priorities: prioritize the RNG requests to minimize the RNG
    // interference (Section 5.2.1), batching them into one RNG-mode
    // session; the stall counter bounds how long regular reads wait.
    (void)oldest_reg_seq;
    (void)oldest_rng_seq;
    if (s.regular >= cfg.stallLimit) {
        s.regular = 0;
        return QueueChoice::Regular;
    }
    s.regular++;
    maxStall = std::max(maxStall, s.regular);
    return QueueChoice::Rng;
}

void
RngAwarePolicy::noteServed(unsigned channel, QueueChoice served)
{
    StallCounters &s = stalls[channel];
    if (served == QueueChoice::Regular)
        s.regular = 0;
    else if (served == QueueChoice::Rng)
        s.rng = 0;
}

} // namespace dstrange::mem
