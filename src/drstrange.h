/**
 * @file
 * Umbrella header for the dr-strange library: include this to use the
 * full public API (system simulation, workloads, metrics, and the
 * getrandom()-style RandomDevice).
 */

#ifndef DSTRANGE_DRSTRANGE_H
#define DSTRANGE_DRSTRANGE_H

#include "api/random_device.h"
#include "api/simulation_builder.h"
#include "common/latency_histogram.h"
#include "common/stats_util.h"
#include "common/table_printer.h"
#include "dram/mapping_registry.h"
#include "mem/scheduler_registry.h"
#include "service/arrival_process.h"
#include "service/open_loop_service.h"
#include "service/slo_report.h"
#include "sim/area_model.h"
#include "sim/config_text.h"
#include "sim/design_registry.h"
#include "sim/energy_model.h"
#include "sim/metrics.h"
#include "sim/result_store.h"
#include "sim/runner.h"
#include "sim/sweep_runner.h"
#include "sim/system.h"
#include "strange/predictor_registry.h"
#include "trng/bit_quality.h"
#include "trng/trng_mechanism.h"
#include "workloads/app_profile.h"
#include "workloads/mixes.h"
#include "workloads/rng_benchmark.h"
#include "workloads/synthetic_trace.h"

#endif // DSTRANGE_DRSTRANGE_H
